//! Wall-clock throughput accounting for batch runs.

use std::fmt;
use std::time::Duration;

/// Throughput of one batch compression (or decompression) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Number of images processed.
    pub images: usize,
    /// Raw input volume in bytes (pixels at their nominal packed bit depth).
    pub raw_bytes: usize,
    /// Total compressed volume in bytes.
    pub compressed_bytes: usize,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Raw megabytes (10^6 bytes) processed per second of wall time.
    #[must_use]
    pub fn megabytes_per_second(&self) -> f64 {
        self.raw_bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Images completed per second of wall time.
    #[must_use]
    pub fn images_per_second(&self) -> f64 {
        self.images as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Compression ratio (raw / compressed); greater than 1 means the batch
    /// shrank.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / (self.compressed_bytes as f64).max(1.0)
    }

    /// Speedup of this run relative to `baseline` (same workload measured
    /// elsewhere, e.g. on one worker).
    #[must_use]
    pub fn speedup_over(&self, baseline: &BatchReport) -> f64 {
        baseline.wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} images in {:.3} s on {} workers: {:.1} MB/s, {:.1} images/s, {:.2}:1",
            self.images,
            self.wall.as_secs_f64(),
            self.workers,
            self.megabytes_per_second(),
            self.images_per_second(),
            self.ratio()
        )
    }
}

/// Throughput of one tile-parallel fixed-point transform (see
/// [`crate::TiledFixedDwt2d::forward_with_report`]).
///
/// The transform has no compressed output, so the natural rates are samples
/// and tiles per second rather than a compression ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiledDwtReport {
    /// Number of tiles in the grid.
    pub tiles: usize,
    /// Pixels transformed (the frame's sample count).
    pub samples: usize,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Wall-clock time of the whole frame.
    pub wall: Duration,
}

impl TiledDwtReport {
    /// Megasamples (10^6 pixels) transformed per second of wall time.
    #[must_use]
    pub fn megasamples_per_second(&self) -> f64 {
        self.samples as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Tiles completed per second of wall time.
    #[must_use]
    pub fn tiles_per_second(&self) -> f64 {
        self.tiles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Speedup of this run relative to `baseline` (same frame measured with
    /// a different configuration, e.g. one worker).
    #[must_use]
    pub fn speedup_over(&self, baseline: &TiledDwtReport) -> f64 {
        baseline.wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }
}

impl fmt::Display for TiledDwtReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tiles in {:.3} s on {} workers: {:.1} Msamples/s, {:.1} tiles/s",
            self.tiles,
            self.wall.as_secs_f64(),
            self.workers,
            self.megasamples_per_second(),
            self.tiles_per_second()
        )
    }
}

/// Throughput of one tiled compression run (see
/// [`crate::TiledCompressor::compress_with_report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiledReport {
    /// Number of tiles in the grid.
    pub tiles: usize,
    /// Raw input volume in bytes (pixels at their nominal packed bit depth).
    pub raw_bytes: usize,
    /// Size of the produced stream in bytes.
    pub compressed_bytes: usize,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Wall-clock time of the whole image.
    pub wall: Duration,
}

impl TiledReport {
    /// Raw megabytes (10^6 bytes) processed per second of wall time.
    #[must_use]
    pub fn megabytes_per_second(&self) -> f64 {
        self.raw_bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Tiles completed per second of wall time.
    #[must_use]
    pub fn tiles_per_second(&self) -> f64 {
        self.tiles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Compression ratio (raw / compressed).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / (self.compressed_bytes as f64).max(1.0)
    }
}

impl fmt::Display for TiledReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tiles in {:.3} s on {} workers: {:.1} MB/s, {:.1} tiles/s, {:.2}:1",
            self.tiles,
            self.wall.as_secs_f64(),
            self.workers,
            self.megabytes_per_second(),
            self.tiles_per_second(),
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchReport {
        BatchReport {
            images: 4,
            raw_bytes: 8_000_000,
            compressed_bytes: 4_000_000,
            workers: 2,
            wall: Duration::from_secs(2),
        }
    }

    #[test]
    fn derived_rates_are_consistent() {
        let r = sample();
        assert!((r.megabytes_per_second() - 4.0).abs() < 1e-9);
        assert!((r.images_per_second() - 2.0).abs() < 1e-9);
        assert!((r.ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_compares_wall_times() {
        let fast = sample();
        let slow = BatchReport { wall: Duration::from_secs(6), ..fast };
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_readable() {
        let text = sample().to_string();
        assert!(text.contains("4 images"));
        assert!(text.contains("MB/s"));
    }

    #[test]
    fn tiled_report_rates_and_display() {
        let r = TiledReport {
            tiles: 16,
            raw_bytes: 8_000_000,
            compressed_bytes: 2_000_000,
            workers: 4,
            wall: Duration::from_secs(2),
        };
        assert!((r.megabytes_per_second() - 4.0).abs() < 1e-9);
        assert!((r.tiles_per_second() - 8.0).abs() < 1e-9);
        assert!((r.ratio() - 4.0).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("16 tiles"));
        assert!(text.contains("tiles/s"));
    }
}
