//! Intra-image parallelism: the row-parallel fixed-point 2-D DWT.

use lwc_dwt::{analyze_periodic_fixed, synthesize_periodic_fixed, FixedStep};
use lwc_dwt::{Decomposition, DwtError, FixedDwt2d};
use lwc_filters::FilterBank;
use lwc_image::Image;
use std::thread;

/// Row-parallel version of the bit-exact fixed-point 2-D DWT.
///
/// The software analogue of the paper's pipelined row/column datapath: at
/// every scale the independent row filterings (and the column gathers) are
/// fanned across `std::thread` workers. The per-row arithmetic is exactly
/// [`lwc_dwt::FixedDwt2d`]'s, and rows do not interact within a pass, so the
/// result is **bit-identical** to the sequential transform — only the wall
/// clock changes.
///
/// ```
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_image::synth;
/// use lwc_pipeline::ParallelFixedDwt2d;
///
/// # fn main() -> Result<(), lwc_dwt::DwtError> {
/// let bank = FilterBank::table1(FilterId::F1);
/// let dwt = ParallelFixedDwt2d::new(&bank, 3, 2)?;
/// let image = synth::ct_phantom(64, 64, 12, 0);
/// assert!(lwc_image::stats::bit_exact(&image, &dwt.roundtrip(&image)?)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelFixedDwt2d {
    inner: FixedDwt2d,
    workers: usize,
}

impl ParallelFixedDwt2d {
    /// Builds the transform with the paper's default word lengths and the
    /// given worker count. `workers == 0` selects the machine's available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::paper_default`].
    pub fn new(bank: &FilterBank, scales: u32, workers: usize) -> Result<Self, DwtError> {
        Ok(Self::with_transform(FixedDwt2d::paper_default(bank, scales)?, workers))
    }

    /// Wraps an existing sequential transform. `workers == 0` selects the
    /// machine's available parallelism.
    #[must_use]
    pub fn with_transform(inner: FixedDwt2d, workers: usize) -> Self {
        let workers = if workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            workers
        };
        Self { inner, workers }
    }

    /// The sequential transform this parallel version reproduces bit for bit.
    #[must_use]
    pub fn inner(&self) -> &FixedDwt2d {
        &self.inner
    }

    /// Number of worker threads per pass.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.inner.scales()
    }

    /// The sequential transform's per-pass alignment/rounding schedule,
    /// reused verbatim so the two drivers cannot diverge.
    fn step(&self, from: u32, to: u32) -> FixedStep {
        self.inner.step(from, to)
    }

    /// Forward transform, bit-identical to [`FixedDwt2d::forward`].
    ///
    /// The sequential transform drives the whole schedule
    /// ([`FixedDwt2d::forward_with`]); only the per-scale pass is replaced
    /// with the row-parallel implementation.
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::forward`].
    pub fn forward(&self, image: &Image) -> Result<Decomposition<i64>, DwtError> {
        self.inner.forward_with(image, |data, stride, cur_w, cur_h, s| {
            self.forward_scale(data, stride, cur_w, cur_h, s)
        })
    }

    /// Inverse transform, bit-identical to [`FixedDwt2d::inverse`].
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::inverse`].
    pub fn inverse(&self, decomposition: &Decomposition<i64>) -> Result<Image, DwtError> {
        self.inner.inverse_with(decomposition, |data, stride, cur_w, cur_h, s| {
            self.inverse_scale(data, stride, cur_w, cur_h, s)
        })
    }

    /// Convenience helper: forward followed by inverse.
    ///
    /// # Errors
    ///
    /// See [`ParallelFixedDwt2d::forward`] and [`ParallelFixedDwt2d::inverse`].
    pub fn roundtrip(&self, image: &Image) -> Result<Image, DwtError> {
        let d = self.forward(image)?;
        self.inverse(&d)
    }

    fn forward_scale(
        &self,
        data: &mut [i64],
        stride: usize,
        cur_w: usize,
        cur_h: usize,
        s: u32,
    ) -> Result<(), DwtError> {
        let row_step = self.step(s - 1, s);
        let col_step = self.step(s, s);
        let quantized = self.inner.quantized_bank();
        let lp = quantized.analysis_lowpass();
        let hp = quantized.analysis_highpass();

        // Row pass: every active row filtered in place, rows fanned across
        // workers.
        for_each_row(data, stride, cur_w, cur_h, self.workers, |row| {
            let (a, d) = analyze_periodic_fixed(row, lp, hp, row_step)?;
            row[..cur_w / 2].copy_from_slice(&a);
            row[cur_w / 2..].copy_from_slice(&d);
            Ok(())
        })?;

        // Column pass: gather + filter in parallel (read-only on `data`),
        // then scatter sequentially.
        let columns = map_columns(data, stride, cur_w, cur_h, self.workers, |col| {
            analyze_periodic_fixed(col, lp, hp, col_step)
        })?;
        for (x, (a, d)) in columns.into_iter().enumerate() {
            for y in 0..cur_h / 2 {
                data[y * stride + x] = a[y];
                data[(y + cur_h / 2) * stride + x] = d[y];
            }
        }
        Ok(())
    }

    fn inverse_scale(
        &self,
        data: &mut [i64],
        stride: usize,
        cur_w: usize,
        cur_h: usize,
        s: u32,
    ) -> Result<(), DwtError> {
        let col_step = self.step(s, s);
        let row_step = self.step(s, s - 1);
        let quantized = self.inner.quantized_bank();
        let lp = quantized.synthesis_lowpass();
        let hp = quantized.synthesis_highpass();

        // Undo the column pass: gather + synthesize in parallel, scatter
        // sequentially.
        let columns = map_columns(data, stride, cur_w, cur_h, self.workers, |col| {
            let (approx, detail) = col.split_at(cur_h / 2);
            synthesize_periodic_fixed(approx, detail, lp, hp, col_step)
        })?;
        for (x, col) in columns.into_iter().enumerate() {
            for (y, &v) in col.iter().enumerate() {
                data[y * stride + x] = v;
            }
        }

        // Undo the row pass in place, rows fanned across workers.
        for_each_row(data, stride, cur_w, cur_h, self.workers, |row| {
            let (approx, detail) = row.split_at(cur_w / 2);
            let full = synthesize_periodic_fixed(approx, detail, lp, hp, row_step)?;
            row.copy_from_slice(&full);
            Ok(())
        })
    }
}

/// Applies `op` to the first `cur_w` samples of each of the first `cur_h`
/// rows, in place, fanning rows across `workers` scoped threads.
fn for_each_row(
    data: &mut [i64],
    stride: usize,
    cur_w: usize,
    cur_h: usize,
    workers: usize,
    op: impl Fn(&mut [i64]) -> Result<(), DwtError> + Sync,
) -> Result<(), DwtError> {
    let mut rows: Vec<&mut [i64]> =
        data.chunks_mut(stride).take(cur_h).map(|chunk| &mut chunk[..cur_w]).collect();
    let per_worker = rows.len().div_ceil(workers.max(1)).max(1);
    thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks_mut(per_worker)
            .map(|segment| {
                scope.spawn(|| -> Result<(), DwtError> {
                    for row in segment.iter_mut() {
                        op(row)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("row worker panicked")?;
        }
        Ok(())
    })
}

/// Gathers each of the first `cur_w` columns (`cur_h` samples tall), applies
/// `op`, and returns the per-column outputs in column order. The gathers and
/// the filtering run across `workers` scoped threads; `data` is only read.
fn map_columns<Out: Send>(
    data: &[i64],
    stride: usize,
    cur_w: usize,
    cur_h: usize,
    workers: usize,
    op: impl Fn(&[i64]) -> Result<Out, DwtError> + Sync,
) -> Result<Vec<Out>, DwtError> {
    let per_worker = cur_w.div_ceil(workers.max(1)).max(1);
    let ranges: Vec<std::ops::Range<usize>> =
        (0..cur_w).step_by(per_worker).map(|x0| x0..(x0 + per_worker).min(cur_w)).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(|| -> Result<Vec<Out>, DwtError> {
                    let mut column = vec![0i64; cur_h];
                    let mut outputs = Vec::with_capacity(range.len());
                    for x in range {
                        for (y, slot) in column.iter_mut().enumerate() {
                            *slot = data[y * stride + x];
                        }
                        outputs.push(op(&column)?);
                    }
                    Ok(outputs)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(cur_w);
        for handle in handles {
            let outputs: Vec<Out> = handle.join().expect("column worker panicked")?;
            all.extend(outputs);
        }
        Ok(all)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;
    use lwc_image::{stats, synth};

    #[test]
    fn forward_is_bit_identical_to_the_sequential_transform() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let sequential = FixedDwt2d::paper_default(&bank, 3).unwrap();
            let parallel = ParallelFixedDwt2d::with_transform(sequential.clone(), 3);
            let image = synth::mr_slice(64, 32, 12, 7);
            let expected = sequential.forward(&image).unwrap();
            let actual = parallel.forward(&image).unwrap();
            assert_eq!(actual.data(), expected.data(), "{id}");
        }
    }

    #[test]
    fn inverse_is_bit_identical_and_roundtrip_is_lossless() {
        let bank = FilterBank::table1(FilterId::F2);
        let sequential = FixedDwt2d::paper_default(&bank, 4).unwrap();
        let parallel = ParallelFixedDwt2d::with_transform(sequential.clone(), 3);
        let image = synth::ct_phantom(64, 64, 12, 3);
        let coeffs = parallel.forward(&image).unwrap();
        let back_parallel = parallel.inverse(&coeffs).unwrap();
        let back_sequential = sequential.inverse(&coeffs).unwrap();
        assert_eq!(back_parallel.samples(), back_sequential.samples());
        assert!(stats::bit_exact(&image, &back_parallel).unwrap());
    }

    #[test]
    fn one_worker_degenerates_to_the_sequential_order() {
        let bank = FilterBank::table1(FilterId::F4);
        let parallel = ParallelFixedDwt2d::new(&bank, 2, 1).unwrap();
        let image = synth::random_image(32, 32, 12, 9);
        assert!(stats::bit_exact(&image, &parallel.roundtrip(&image).unwrap()).unwrap());
    }

    #[test]
    fn mismatched_decompositions_are_rejected() {
        let f1 = ParallelFixedDwt2d::new(&FilterBank::table1(FilterId::F1), 2, 2).unwrap();
        let f3 = ParallelFixedDwt2d::new(&FilterBank::table1(FilterId::F3), 2, 2).unwrap();
        let image = synth::ct_phantom(32, 32, 12, 0);
        let coeffs = f1.forward(&image).unwrap();
        assert!(f3.inverse(&coeffs).is_err());
    }
}
