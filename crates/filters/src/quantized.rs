//! Fixed-point quantization of filter coefficients.
//!
//! The paper stores the wavelet filter coefficients in a small RAM as 32-bit
//! fixed-point words (Section 3: *"32 bits for wavelet filter"*). The largest
//! coefficient magnitude over all Table I banks is 1.06066 (F4), so two
//! integer bits (sign + one) are enough; the remaining 30 bits hold the
//! fraction.

use crate::{FilterBank, FilterId, Kernel};
use lwc_fixed::{FixedError, QFormat};

/// A [`Kernel`] quantized to a fixed-point format.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKernel {
    raw: Vec<i64>,
    min_index: i32,
    format: QFormat,
}

impl QuantizedKernel {
    /// Quantizes `kernel` to `format`, rounding each coefficient to the
    /// nearest representable value.
    ///
    /// # Errors
    ///
    /// Returns an error if any coefficient does not fit `format`.
    pub fn quantize(kernel: &Kernel, format: QFormat) -> Result<Self, FixedError> {
        let raw =
            kernel.coeffs().iter().map(|&c| format.quantize(c)).collect::<Result<Vec<_>, _>>()?;
        Ok(Self { raw, min_index: kernel.min_index(), format })
    }

    /// Raw coefficient words, ordered from `min_index` upwards.
    #[must_use]
    pub fn raw(&self) -> &[i64] {
        &self.raw
    }

    /// Index of the first tap.
    #[must_use]
    pub fn min_index(&self) -> i32 {
        self.min_index
    }

    /// Index of the last tap.
    #[must_use]
    pub fn max_index(&self) -> i32 {
        self.min_index + self.raw.len() as i32 - 1
    }

    /// Number of taps.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Raw word at index `n`, or zero outside the support.
    #[must_use]
    pub fn at(&self, n: i32) -> i64 {
        if n < self.min_index || n > self.max_index() {
            0
        } else {
            self.raw[(n - self.min_index) as usize]
        }
    }

    /// The fixed-point format of the coefficients.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Reconstructs the real-valued kernel represented by the quantized
    /// coefficients (useful for error analysis).
    #[must_use]
    pub fn to_kernel(&self) -> Kernel {
        Kernel::new(self.raw.iter().map(|&r| self.format.dequantize(r)).collect(), self.min_index)
    }

    /// Largest absolute quantization error over the taps, in real units.
    #[must_use]
    pub fn max_quantization_error(&self, original: &Kernel) -> f64 {
        self.to_kernel()
            .coeffs()
            .iter()
            .zip(original.coeffs())
            .map(|(q, o)| (q - o).abs())
            .fold(0.0, f64::max)
    }
}

/// A complete filter bank quantized for the hardware datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedBank {
    id: FilterId,
    analysis_lowpass: QuantizedKernel,
    analysis_highpass: QuantizedKernel,
    synthesis_lowpass: QuantizedKernel,
    synthesis_highpass: QuantizedKernel,
    format: QFormat,
}

impl QuantizedBank {
    /// Default number of integer bits for coefficient words: sign plus one
    /// magnitude bit, enough for the largest Table I coefficient (1.06066).
    pub const COEFF_INT_BITS: u32 = 2;

    /// Quantizes `bank` to `word_bits`-bit coefficients with
    /// [`Self::COEFF_INT_BITS`] integer bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the format cannot be built or a coefficient does
    /// not fit (neither happens for the Table I banks with `word_bits >= 3`).
    pub fn new(bank: &FilterBank, word_bits: u32) -> Result<Self, FixedError> {
        let format = QFormat::new(word_bits, Self::COEFF_INT_BITS)?;
        Ok(Self {
            id: bank.id(),
            analysis_lowpass: QuantizedKernel::quantize(bank.analysis_lowpass(), format)?,
            analysis_highpass: QuantizedKernel::quantize(bank.analysis_highpass(), format)?,
            synthesis_lowpass: QuantizedKernel::quantize(bank.synthesis_lowpass(), format)?,
            synthesis_highpass: QuantizedKernel::quantize(bank.synthesis_highpass(), format)?,
            format,
        })
    }

    /// Quantizes with the paper's 32-bit coefficient word.
    ///
    /// # Errors
    ///
    /// See [`QuantizedBank::new`].
    pub fn paper_default(bank: &FilterBank) -> Result<Self, FixedError> {
        Self::new(bank, lwc_fixed::COEFFICIENT_BITS)
    }

    /// Bank identifier.
    #[must_use]
    pub fn id(&self) -> FilterId {
        self.id
    }

    /// Quantized analysis low-pass filter.
    #[must_use]
    pub fn analysis_lowpass(&self) -> &QuantizedKernel {
        &self.analysis_lowpass
    }

    /// Quantized analysis high-pass filter.
    #[must_use]
    pub fn analysis_highpass(&self) -> &QuantizedKernel {
        &self.analysis_highpass
    }

    /// Quantized synthesis low-pass filter.
    #[must_use]
    pub fn synthesis_lowpass(&self) -> &QuantizedKernel {
        &self.synthesis_lowpass
    }

    /// Quantized synthesis high-pass filter.
    #[must_use]
    pub fn synthesis_highpass(&self) -> &QuantizedKernel {
        &self.synthesis_highpass
    }

    /// Coefficient word format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Number of coefficient words the on-chip coefficient RAM must hold for
    /// one pass (the longest filter of the bank).
    #[must_use]
    pub fn coefficient_ram_words(&self) -> usize {
        self.analysis_lowpass
            .len()
            .max(self.analysis_highpass.len())
            .max(self.synthesis_lowpass.len())
            .max(self.synthesis_highpass.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FilterBank;

    #[test]
    fn quantization_error_is_below_half_lsb() {
        for bank in FilterBank::all_table1() {
            let q = QuantizedBank::paper_default(&bank).unwrap();
            let lsb = q.format().lsb();
            assert!(
                q.analysis_lowpass().max_quantization_error(bank.analysis_lowpass()) <= lsb / 2.0
            );
            assert!(
                q.synthesis_lowpass().max_quantization_error(bank.synthesis_lowpass()) <= lsb / 2.0
            );
        }
    }

    #[test]
    fn paper_format_is_q2_30() {
        let bank = FilterBank::table1(FilterId::F1);
        let q = QuantizedBank::paper_default(&bank).unwrap();
        assert_eq!(q.format().total_bits(), 32);
        assert_eq!(q.format().int_bits(), 2);
        assert_eq!(q.format().frac_bits(), 30);
    }

    #[test]
    fn largest_coefficient_fits_two_integer_bits() {
        // F4's 1.060660 is the largest coefficient in Table I; with 2 integer
        // bits the representable maximum is just below 2.0.
        let bank = FilterBank::table1(FilterId::F4);
        let q = QuantizedBank::paper_default(&bank).unwrap();
        let max = q
            .analysis_lowpass()
            .to_kernel()
            .max_abs()
            .max(q.synthesis_highpass().to_kernel().max_abs());
        assert!(max > 1.06 && max < 2.0);
    }

    #[test]
    fn too_narrow_words_are_rejected() {
        let bank = FilterBank::table1(FilterId::F4);
        // A 1-bit word cannot even hold the 2 integer bits of the format.
        assert!(QuantizedBank::new(&bank, 1).is_err());
    }

    #[test]
    fn indexing_matches_original_support() {
        let bank = FilterBank::table1(FilterId::F2);
        let q = QuantizedBank::paper_default(&bank).unwrap();
        assert_eq!(q.analysis_lowpass().min_index(), bank.analysis_lowpass().min_index());
        assert_eq!(q.analysis_lowpass().max_index(), bank.analysis_lowpass().max_index());
        assert_eq!(q.analysis_lowpass().at(100), 0);
        assert_eq!(q.coefficient_ram_words(), 13);
    }

    #[test]
    fn dequantized_kernel_is_close_to_original() {
        let bank = FilterBank::table1(FilterId::F6);
        let q = QuantizedBank::paper_default(&bank).unwrap();
        let k = q.analysis_lowpass().to_kernel();
        for (a, b) in k.coeffs().iter().zip(bank.analysis_lowpass().coeffs()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn coarse_quantization_has_visible_error() {
        let bank = FilterBank::table1(FilterId::F1);
        let q = QuantizedBank::new(&bank, 8).unwrap();
        let err = q.analysis_lowpass().max_quantization_error(bank.analysis_lowpass());
        assert!(err > 1e-4, "8-bit coefficients should be visibly coarse, err={err}");
    }
}
