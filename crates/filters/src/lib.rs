//! # lwc-filters — the QMF filter banks of Table I
//!
//! The paper restricts itself to the six filter banks that its reference
//! \[15\] (Villasenor, Belzer, Liao, *"Wavelet Filter Evaluation for Image
//! Compression"*, IEEE TIP 1995) identifies as best suited to image
//! compression. Table I of the paper lists, for each bank `F1…F6`, the
//! analysis low-pass filter `H`, the synthesis low-pass filter `H̃`, their
//! lengths and the sum of absolute coefficient values (which drives the
//! dynamic-range analysis of Table II).
//!
//! This crate provides:
//!
//! * [`Kernel`] — an indexed FIR filter (coefficients plus support offsets),
//! * [`FilterBank`] — a complete biorthogonal bank: analysis/synthesis
//!   low-pass and the high-pass filters derived from them through the
//!   quadrature-mirror relations `g[n] = (-1)^n h̃[1-n]`,
//!   `g̃[n] = (-1)^n h[1-n]`,
//! * [`FilterId`] — the `F1…F6` identifiers of Table I,
//! * [`QuantizedBank`] — the same bank with coefficients quantized to the
//!   32-bit fixed-point representation used by the hardware datapath,
//! * filter metrics (absolute sums, DC gains, biorthogonality residuals)
//!   used to regenerate Table I and to feed the word-length analysis.
//!
//! ```
//! use lwc_filters::{FilterBank, FilterId};
//!
//! let bank = FilterBank::table1(FilterId::F1);
//! assert_eq!(bank.analysis_lowpass().len(), 9);
//! assert_eq!(bank.synthesis_lowpass().len(), 7);
//! // Table I, last column: sum of absolute values of the coefficients.
//! assert!((bank.analysis_lowpass().abs_sum() - 1.952105).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod kernel;
mod metrics;
mod quantized;
mod table1;

pub use bank::{CoefficientPrecision, FilterBank, FilterId};
pub use kernel::Kernel;
pub use metrics::{BankMetrics, BiorthogonalityReport};
pub use quantized::{QuantizedBank, QuantizedKernel};
pub use table1::{Table1Entry, TABLE1};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn all_six_banks_are_constructible() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            assert!(bank.analysis_lowpass().len() >= 2);
            assert!(bank.synthesis_lowpass().len() >= 2);
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Kernel>();
        assert_send_sync::<FilterBank>();
        assert_send_sync::<QuantizedBank>();
    }
}
