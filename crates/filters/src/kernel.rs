//! Indexed FIR filter kernels.

use std::fmt;

/// A finite impulse response filter with an explicit support: coefficient
/// `i` of `coeffs` is the tap at index `min_index + i`.
///
/// Indexing matters for the wavelet filter banks: analysis and synthesis
/// filters must be aligned so that their cross-correlation at even lags is a
/// unit impulse (the biorthogonality condition), and the derived high-pass
/// filters carry an index offset from the quadrature-mirror relation.
///
/// ```
/// use lwc_filters::Kernel;
/// let k = Kernel::symmetric_odd(&[0.75, 0.25, -0.125]); // 5/3 low-pass / sqrt(2)
/// assert_eq!(k.len(), 5);
/// assert_eq!(k.min_index(), -2);
/// assert_eq!(k.at(2), -0.125);
/// assert_eq!(k.at(3), 0.0); // outside the support
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    coeffs: Vec<f64>,
    min_index: i32,
}

impl Kernel {
    /// Creates a kernel from explicit coefficients and the index of the first
    /// tap.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn new(coeffs: Vec<f64>, min_index: i32) -> Self {
        assert!(!coeffs.is_empty(), "a kernel needs at least one tap");
        Self { coeffs, min_index }
    }

    /// Builds a whole-sample symmetric (odd-length) kernel from its
    /// non-negative-index half `[c0, c1, …, ck]`: the result has taps
    /// `c[|n|]` for `n = -k..=k`.
    ///
    /// This is the convention Table I of the paper uses for odd-length
    /// filters (*"Origin is the leftmost coefficient. Coefficients for
    /// negative indices follow by the symmetry of QMFs"*).
    ///
    /// # Panics
    ///
    /// Panics if `half` is empty.
    #[must_use]
    pub fn symmetric_odd(half: &[f64]) -> Self {
        assert!(!half.is_empty(), "a kernel needs at least one tap");
        let k = half.len() - 1;
        let mut coeffs = Vec::with_capacity(2 * k + 1);
        for i in (1..=k).rev() {
            coeffs.push(half[i]);
        }
        coeffs.extend_from_slice(half);
        Self { coeffs, min_index: -(k as i32) }
    }

    /// Builds a half-sample symmetric (even-length) kernel from its right
    /// half `[c1, c2, …, ck]`: the result has taps at indices
    /// `-(k-1)..=k` with `h[n] = h[1-n]`, i.e. `h[1] = h[0] = c1`,
    /// `h[2] = h[-1] = c2`, and so on.
    ///
    /// This matches Table I's even-length entries (F3 and F5).
    ///
    /// # Panics
    ///
    /// Panics if `half` is empty.
    #[must_use]
    pub fn symmetric_even(half: &[f64]) -> Self {
        assert!(!half.is_empty(), "a kernel needs at least one tap");
        let k = half.len();
        let mut coeffs = Vec::with_capacity(2 * k);
        for i in (0..k).rev() {
            coeffs.push(half[i]);
        }
        coeffs.extend_from_slice(half);
        Self { coeffs, min_index: -(k as i32 - 1) }
    }

    /// Number of taps.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Index of the first (leftmost) tap.
    #[must_use]
    pub fn min_index(&self) -> i32 {
        self.min_index
    }

    /// Index of the last (rightmost) tap.
    #[must_use]
    pub fn max_index(&self) -> i32 {
        self.min_index + self.coeffs.len() as i32 - 1
    }

    /// Coefficient at index `n`, or zero outside the support.
    #[must_use]
    pub fn at(&self, n: i32) -> f64 {
        if n < self.min_index || n > self.max_index() {
            0.0
        } else {
            self.coeffs[(n - self.min_index) as usize]
        }
    }

    /// The coefficients as a slice, ordered from `min_index` upwards.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Iterates over `(index, coefficient)` pairs.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (i32, f64)> + '_ {
        self.coeffs.iter().enumerate().map(move |(i, &c)| (self.min_index + i as i32, c))
    }

    /// Sum of coefficients (DC gain).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.coeffs.iter().sum()
    }

    /// Sum of absolute coefficient values — the `Σ|c_n|` column of Table I,
    /// which upper-bounds the per-stage dynamic-range growth.
    #[must_use]
    pub fn abs_sum(&self) -> f64 {
        self.coeffs.iter().map(|c| c.abs()).sum()
    }

    /// Largest absolute coefficient value (determines the integer bits needed
    /// by the coefficient format).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.coeffs.iter().fold(0.0, |m, c| m.max(c.abs()))
    }

    /// Returns the modulated, time-reversed kernel `q[n] = (-1)^n p[1-n]`
    /// used to derive a high-pass filter from the opposite low-pass filter of
    /// a biorthogonal pair.
    #[must_use]
    pub fn quadrature_mirror(&self) -> Self {
        // support of q: n such that 1-n is in [min, max]  =>  n in [1-max, 1-min]
        let min = 1 - self.max_index();
        let max = 1 - self.min_index;
        let mut coeffs = Vec::with_capacity((max - min + 1) as usize);
        for n in min..=max {
            let sign = if n.rem_euclid(2) == 0 { 1.0 } else { -1.0 };
            coeffs.push(sign * self.at(1 - n));
        }
        Self { coeffs, min_index: min }
    }

    /// Cross-correlation with another kernel at lag `lag`:
    /// `Σ_n self[n] · other[n + lag]`.
    #[must_use]
    pub fn cross_correlation(&self, other: &Kernel, lag: i32) -> f64 {
        self.iter_indexed().map(|(n, c)| c * other.at(n + lag)).sum()
    }

    /// Returns `true` when the kernel is symmetric (whole- or half-sample).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        let n = self.coeffs.len();
        (0..n / 2).all(|i| (self.coeffs[i] - self.coeffs[n - 1 - i]).abs() < 1e-12)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]: ", self.min_index, self.max_index())?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.6}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_odd_expansion() {
        let k = Kernel::symmetric_odd(&[3.0, 2.0, 1.0]);
        assert_eq!(k.coeffs(), &[1.0, 2.0, 3.0, 2.0, 1.0]);
        assert_eq!(k.min_index(), -2);
        assert_eq!(k.max_index(), 2);
        assert!(k.is_symmetric());
    }

    #[test]
    fn symmetric_even_expansion() {
        let k = Kernel::symmetric_even(&[3.0, 2.0, 1.0]);
        assert_eq!(k.coeffs(), &[1.0, 2.0, 3.0, 3.0, 2.0, 1.0]);
        assert_eq!(k.min_index(), -2);
        assert_eq!(k.max_index(), 3);
        assert!(k.is_symmetric());
        // half-sample symmetry about +1/2: h[n] == h[1-n]
        for n in k.min_index()..=k.max_index() {
            assert_eq!(k.at(n), k.at(1 - n));
        }
    }

    #[test]
    fn at_is_zero_outside_support() {
        let k = Kernel::symmetric_odd(&[1.0, 0.5]);
        assert_eq!(k.at(-2), 0.0);
        assert_eq!(k.at(2), 0.0);
        assert_eq!(k.at(0), 1.0);
    }

    #[test]
    fn sums_and_max_abs() {
        let k = Kernel::new(vec![-1.0, 2.0, -3.0], 0);
        assert_eq!(k.sum(), -2.0);
        assert_eq!(k.abs_sum(), 6.0);
        assert_eq!(k.max_abs(), 3.0);
    }

    #[test]
    fn quadrature_mirror_of_haar() {
        // h̃ = [1/sqrt2, 1/sqrt2] at indices 0..1 ; g[n] = (-1)^n h̃[1-n]
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let ht = Kernel::new(vec![s, s], 0);
        let g = ht.quadrature_mirror();
        assert_eq!(g.min_index(), 0);
        assert_eq!(g.max_index(), 1);
        assert!((g.at(0) - s).abs() < 1e-15);
        assert!((g.at(1) + s).abs() < 1e-15);
        // A high-pass filter has zero DC gain.
        assert!(g.sum().abs() < 1e-15);
    }

    #[test]
    fn quadrature_mirror_of_symmetric_odd_filter() {
        let h = Kernel::symmetric_odd(&[0.75, 0.25, -0.125]);
        let g = h.quadrature_mirror();
        assert_eq!(g.len(), h.len());
        // support of g: [1-2, 1+2] = [-1, 3]
        assert_eq!(g.min_index(), -1);
        assert_eq!(g.max_index(), 3);
        assert!(g.sum().abs() < 1e-12, "high-pass must kill DC");
    }

    #[test]
    fn cross_correlation_of_orthonormal_haar() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = Kernel::new(vec![s, s], 0);
        assert!((h.cross_correlation(&h, 0) - 1.0).abs() < 1e-15);
        assert!(h.cross_correlation(&h, 2).abs() < 1e-15);
    }

    #[test]
    fn iter_indexed_yields_support() {
        let k = Kernel::new(vec![1.0, 2.0], -3);
        let v: Vec<(i32, f64)> = k.iter_indexed().collect();
        assert_eq!(v, vec![(-3, 1.0), (-2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_kernel_rejected() {
        let _ = Kernel::new(vec![], 0);
    }

    #[test]
    fn display_lists_support_and_coefficients() {
        let k = Kernel::new(vec![1.0, -0.5], 0);
        let s = k.to_string();
        assert!(s.contains("[0..1]"));
        assert!(s.contains("-0.500000"));
    }
}
