//! Complete biorthogonal filter banks.

use crate::table1::TABLE1;
use crate::Kernel;
use std::fmt;

/// Identifier of one of the six Table I filter banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FilterId {
    /// The 9/7 bank (Cohen–Daubechies–Feauveau 9/7).
    F1,
    /// The 13/11 bank.
    F2,
    /// The 6/10 bank (half-sample symmetric).
    F3,
    /// The 5/3 bank (LeGall).
    F4,
    /// The 2/6 bank (Haar analysis low-pass).
    F5,
    /// The 9/3 bank.
    F6,
}

impl FilterId {
    /// All six identifiers in Table I order.
    pub const ALL: [FilterId; 6] =
        [FilterId::F1, FilterId::F2, FilterId::F3, FilterId::F4, FilterId::F5, FilterId::F6];

    /// Index of the bank in Table I (0-based).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FilterId::F1 => 0,
            FilterId::F2 => 1,
            FilterId::F3 => 2,
            FilterId::F4 => 3,
            FilterId::F5 => 4,
            FilterId::F6 => 5,
        }
    }

    /// The printed label ("F1" … "F6").
    #[must_use]
    pub fn label(self) -> &'static str {
        TABLE1[self.index()].label
    }
}

impl fmt::Display for FilterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which coefficient values to instantiate a bank from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoefficientPrecision {
    /// The values exactly as printed in Table I (6 decimal digits). This is
    /// what the paper's hardware stores, so it is the default.
    #[default]
    Table1,
    /// Higher-precision values for the banks whose coefficients have simple
    /// closed forms (F1: CDF 9/7 to 15 digits; F4, F5, F6: dyadic rationals
    /// times √2). Banks without a simple closed form (F2, F3) fall back to
    /// the Table I values. Useful to separate coefficient-quantization error
    /// from datapath rounding error in the lossless analysis.
    Refined,
}

/// A biorthogonal analysis/synthesis filter bank.
///
/// * `analysis_lowpass` (`H`) and `synthesis_lowpass` (`H̃`) come from
///   Table I.
/// * `analysis_highpass` (`G`) and `synthesis_highpass` (`G̃`) are derived
///   through the quadrature-mirror relations
///   `g[n] = (-1)^n h̃[1-n]` and `g̃[n] = (-1)^n h[1-n]`,
///   which yield perfect reconstruction whenever
///   `Σ_n h[n]·h̃[n+2k] = δ[k]` (checked by
///   [`BankMetrics`](crate::BankMetrics)).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    id: FilterId,
    precision: CoefficientPrecision,
    analysis_lowpass: Kernel,
    analysis_highpass: Kernel,
    synthesis_lowpass: Kernel,
    synthesis_highpass: Kernel,
}

impl FilterBank {
    /// Builds the bank `id` from the Table I coefficients.
    #[must_use]
    pub fn table1(id: FilterId) -> Self {
        Self::with_precision(id, CoefficientPrecision::Table1)
    }

    /// Builds the bank `id` from the requested coefficient source.
    #[must_use]
    pub fn with_precision(id: FilterId, precision: CoefficientPrecision) -> Self {
        let (analysis_lowpass, synthesis_lowpass) = lowpass_pair(id, precision);
        let analysis_highpass = synthesis_lowpass.quadrature_mirror();
        let synthesis_highpass = analysis_lowpass.quadrature_mirror();
        Self {
            id,
            precision,
            analysis_lowpass,
            analysis_highpass,
            synthesis_lowpass,
            synthesis_highpass,
        }
    }

    /// Builds every Table I bank.
    #[must_use]
    pub fn all_table1() -> Vec<Self> {
        FilterId::ALL.iter().map(|&id| Self::table1(id)).collect()
    }

    /// The bank identifier.
    #[must_use]
    pub fn id(&self) -> FilterId {
        self.id
    }

    /// The coefficient source used to build the bank.
    #[must_use]
    pub fn precision(&self) -> CoefficientPrecision {
        self.precision
    }

    /// Analysis low-pass filter `H`.
    #[must_use]
    pub fn analysis_lowpass(&self) -> &Kernel {
        &self.analysis_lowpass
    }

    /// Analysis high-pass filter `G` (derived).
    #[must_use]
    pub fn analysis_highpass(&self) -> &Kernel {
        &self.analysis_highpass
    }

    /// Synthesis low-pass filter `H̃`.
    #[must_use]
    pub fn synthesis_lowpass(&self) -> &Kernel {
        &self.synthesis_lowpass
    }

    /// Synthesis high-pass filter `G̃` (derived).
    #[must_use]
    pub fn synthesis_highpass(&self) -> &Kernel {
        &self.synthesis_highpass
    }

    /// Length of the longest filter in the bank — the `L` used for buffer
    /// sizing and MAC-count formulas in the paper (13 for the F2 bank).
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.analysis_lowpass
            .len()
            .max(self.analysis_highpass.len())
            .max(self.synthesis_lowpass.len())
            .max(self.synthesis_highpass.len())
    }

    /// Per-scale 2-D dynamic-range growth bound `(max(Σ|h|, Σ|g|))²`
    /// (Section 3: *"The rate of increase is upper bounded by (Σ|c_n|)²"*).
    #[must_use]
    pub fn analysis_growth_bound(&self) -> f64 {
        let m = self.analysis_lowpass.abs_sum().max(self.analysis_highpass.abs_sum());
        m * m
    }
}

impl fmt::Display for FilterBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/{} bank)",
            self.id,
            self.analysis_lowpass.len(),
            self.synthesis_lowpass.len()
        )
    }
}

/// Returns `(analysis lowpass, synthesis lowpass)` for the chosen precision.
fn lowpass_pair(id: FilterId, precision: CoefficientPrecision) -> (Kernel, Kernel) {
    if precision == CoefficientPrecision::Refined {
        if let Some(pair) = refined_pair(id) {
            return pair;
        }
    }
    let entry = &TABLE1[id.index()];
    let expand = |half: &[f64], len: usize| {
        if len % 2 == 1 {
            Kernel::symmetric_odd(half)
        } else {
            Kernel::symmetric_even(half)
        }
    };
    (
        expand(entry.analysis_half, entry.analysis_len),
        expand(entry.synthesis_half, entry.synthesis_len),
    )
}

/// Higher-precision coefficient sets for the banks that have them.
fn refined_pair(id: FilterId) -> Option<(Kernel, Kernel)> {
    let sqrt2 = std::f64::consts::SQRT_2;
    let scale = |v: &[f64]| -> Vec<f64> { v.iter().map(|c| c * sqrt2).collect() };
    match id {
        // CDF 9/7 to full double precision (JPEG 2000 Part 1 values).
        FilterId::F1 => {
            let h = scale(&[
                0.602_949_018_236_360,
                0.266_864_118_442_875,
                -0.078_223_266_528_990,
                -0.016_864_118_442_875,
                0.026_748_757_410_810,
            ]);
            let ht = scale(&[
                0.557_543_526_228_500,
                0.295_635_881_557_125,
                -0.028_771_763_114_250,
                -0.045_635_881_557_125,
            ]);
            Some((Kernel::symmetric_odd(&h), Kernel::symmetric_odd(&ht)))
        }
        // LeGall 5/3: dyadic rationals times √2.
        FilterId::F4 => {
            let h = scale(&[0.75, 0.25, -0.125]);
            let ht = scale(&[0.5, 0.25]);
            Some((Kernel::symmetric_odd(&h), Kernel::symmetric_odd(&ht)))
        }
        // 2/6 bank: dyadic rationals times √2.
        FilterId::F5 => {
            let h = scale(&[0.5]);
            let ht = scale(&[0.5, 0.0625, -0.0625]);
            Some((Kernel::symmetric_even(&h), Kernel::symmetric_even(&ht)))
        }
        // 9/3 bank: dyadic rationals times √2.
        FilterId::F6 => {
            let h = scale(&[45.0 / 64.0, 19.0 / 64.0, -0.125, -3.0 / 64.0, 3.0 / 128.0]);
            let ht = scale(&[0.5, 0.25]);
            Some((Kernel::symmetric_odd(&h), Kernel::symmetric_odd(&ht)))
        }
        FilterId::F2 | FilterId::F3 => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_lengths_match_table1() {
        let expected = [(9, 7), (13, 11), (6, 10), (5, 3), (2, 6), (9, 3)];
        for (id, (la, ls)) in FilterId::ALL.iter().zip(expected) {
            let bank = FilterBank::table1(*id);
            assert_eq!(bank.analysis_lowpass().len(), la, "{id}");
            assert_eq!(bank.synthesis_lowpass().len(), ls, "{id}");
            // Derived high-pass lengths mirror the opposite low-pass.
            assert_eq!(bank.analysis_highpass().len(), ls, "{id}");
            assert_eq!(bank.synthesis_highpass().len(), la, "{id}");
        }
    }

    #[test]
    fn highpass_filters_reject_dc() {
        for bank in FilterBank::all_table1() {
            assert!(
                bank.analysis_highpass().sum().abs() < 1e-4,
                "{}: analysis high-pass DC = {}",
                bank.id(),
                bank.analysis_highpass().sum()
            );
            assert!(
                bank.synthesis_highpass().sum().abs() < 1e-4,
                "{}: synthesis high-pass DC = {}",
                bank.id(),
                bank.synthesis_highpass().sum()
            );
        }
    }

    #[test]
    fn abs_sums_match_printed_table() {
        for (bank, entry) in FilterBank::all_table1().iter().zip(TABLE1.iter()) {
            assert!((bank.analysis_lowpass().abs_sum() - entry.analysis_abs_sum).abs() < 5e-5);
            assert!((bank.synthesis_lowpass().abs_sum() - entry.synthesis_abs_sum).abs() < 5e-5);
        }
    }

    #[test]
    fn f2_is_the_13_tap_bank_used_for_sizing() {
        let bank = FilterBank::table1(FilterId::F2);
        assert_eq!(bank.max_len(), 13);
    }

    #[test]
    fn growth_bound_exceeds_unity() {
        for bank in FilterBank::all_table1() {
            assert!(bank.analysis_growth_bound() > 1.0, "{}", bank.id());
        }
    }

    #[test]
    fn refined_precision_is_close_to_table1() {
        for id in [FilterId::F1, FilterId::F4, FilterId::F5, FilterId::F6] {
            let table = FilterBank::table1(id);
            let refined = FilterBank::with_precision(id, CoefficientPrecision::Refined);
            assert_eq!(table.analysis_lowpass().len(), refined.analysis_lowpass().len());
            for (a, b) in
                table.analysis_lowpass().coeffs().iter().zip(refined.analysis_lowpass().coeffs())
            {
                assert!((a - b).abs() < 1e-5, "{id}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn refined_falls_back_to_table_for_f2_f3() {
        for id in [FilterId::F2, FilterId::F3] {
            let table = FilterBank::table1(id);
            let refined = FilterBank::with_precision(id, CoefficientPrecision::Refined);
            assert_eq!(table.analysis_lowpass(), refined.analysis_lowpass());
        }
    }

    #[test]
    fn display_and_labels() {
        assert_eq!(FilterId::F3.to_string(), "F3");
        assert_eq!(FilterId::F3.label(), "F3");
        let bank = FilterBank::table1(FilterId::F1);
        assert_eq!(bank.to_string(), "F1 (9/7 bank)");
        assert_eq!(bank.id(), FilterId::F1);
        assert_eq!(bank.precision(), CoefficientPrecision::Table1);
    }

    #[test]
    fn filter_id_index_roundtrip() {
        for (i, id) in FilterId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }
}
