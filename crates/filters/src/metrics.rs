//! Filter-bank metrics: Table I columns and perfect-reconstruction checks.

use crate::{FilterBank, FilterId};
use std::fmt;

/// Summary metrics of a filter bank — the quantities the paper's analysis
/// consumes (Table I's `Σ|c_n|` column and the dynamic-range growth factors
/// behind Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankMetrics {
    /// Which bank the metrics describe.
    pub id: FilterId,
    /// Length of the analysis low-pass filter.
    pub analysis_len: usize,
    /// Length of the synthesis low-pass filter.
    pub synthesis_len: usize,
    /// `Σ|h[n]|` of the analysis low-pass filter.
    pub analysis_lowpass_abs_sum: f64,
    /// `Σ|g[n]|` of the derived analysis high-pass filter
    /// (equals `Σ|h̃[n]|` of the synthesis low-pass filter).
    pub analysis_highpass_abs_sum: f64,
    /// `Σ|h̃[n]|` of the synthesis low-pass filter.
    pub synthesis_lowpass_abs_sum: f64,
    /// `Σ|g̃[n]|` of the derived synthesis high-pass filter.
    pub synthesis_highpass_abs_sum: f64,
    /// One-dimensional per-stage growth bound `max(Σ|h|, Σ|g|)`.
    pub growth_1d: f64,
    /// Two-dimensional per-scale growth bound `growth_1d²` — the
    /// `(Σ|c_n|)²` bound quoted in Section 3.
    pub growth_2d: f64,
    /// Largest absolute coefficient over the whole bank (drives the integer
    /// part of the coefficient fixed-point format).
    pub max_abs_coefficient: f64,
}

impl BankMetrics {
    /// Computes the metrics of `bank`.
    #[must_use]
    pub fn of(bank: &FilterBank) -> Self {
        let h = bank.analysis_lowpass();
        let g = bank.analysis_highpass();
        let ht = bank.synthesis_lowpass();
        let gt = bank.synthesis_highpass();
        let growth_1d = h.abs_sum().max(g.abs_sum());
        Self {
            id: bank.id(),
            analysis_len: h.len(),
            synthesis_len: ht.len(),
            analysis_lowpass_abs_sum: h.abs_sum(),
            analysis_highpass_abs_sum: g.abs_sum(),
            synthesis_lowpass_abs_sum: ht.abs_sum(),
            synthesis_highpass_abs_sum: gt.abs_sum(),
            growth_1d,
            growth_2d: growth_1d * growth_1d,
            max_abs_coefficient: h.max_abs().max(g.max_abs()).max(ht.max_abs()).max(gt.max_abs()),
        }
    }

    /// Bits of dynamic-range growth per 2-D scale, `log2(growth_2d)`.
    #[must_use]
    pub fn growth_bits_per_scale(&self) -> f64 {
        self.growth_2d.log2()
    }
}

impl fmt::Display for BankMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: L(H)={} L(H~)={} sum|h|={:.6} sum|h~|={:.6} growth2d={:.3}",
            self.id,
            self.analysis_len,
            self.synthesis_len,
            self.analysis_lowpass_abs_sum,
            self.synthesis_lowpass_abs_sum,
            self.growth_2d
        )
    }
}

/// Result of checking the biorthogonality (perfect-reconstruction) condition
/// `Σ_n h[n]·h̃[n+2k] = δ[k]` for a bank.
#[derive(Debug, Clone, PartialEq)]
pub struct BiorthogonalityReport {
    /// Which bank was checked.
    pub id: FilterId,
    /// `|Σ_n h[n]·h̃[n] - 1|` — deviation of the zero-lag correlation from 1.
    pub zero_lag_error: f64,
    /// Largest `|Σ_n h[n]·h̃[n+2k]|` over all non-zero even lags `2k`.
    pub max_even_lag_leak: f64,
}

impl BiorthogonalityReport {
    /// Checks the even-lag biorthogonality of `bank`'s low-pass pair.
    #[must_use]
    pub fn of(bank: &FilterBank) -> Self {
        let h = bank.analysis_lowpass();
        let ht = bank.synthesis_lowpass();
        let zero_lag_error = (h.cross_correlation(ht, 0) - 1.0).abs();
        let reach = (h.len() + ht.len()) as i32;
        let mut max_even_lag_leak: f64 = 0.0;
        let mut lag = 2;
        while lag <= reach {
            max_even_lag_leak = max_even_lag_leak
                .max(h.cross_correlation(ht, lag).abs())
                .max(h.cross_correlation(ht, -lag).abs());
            lag += 2;
        }
        Self { id: bank.id(), zero_lag_error, max_even_lag_leak }
    }

    /// Worst deviation from exact biorthogonality.
    #[must_use]
    pub fn worst_error(&self) -> f64 {
        self.zero_lag_error.max(self.max_even_lag_leak)
    }

    /// Returns `true` when the deviation is below `tolerance`.
    #[must_use]
    pub fn is_biorthogonal(&self, tolerance: f64) -> bool {
        self.worst_error() <= tolerance
    }
}

impl fmt::Display for BiorthogonalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: zero-lag error {:.2e}, even-lag leak {:.2e}",
            self.id, self.zero_lag_error, self.max_even_lag_leak
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoefficientPrecision;

    #[test]
    // 6-decimal values as printed in Table I (1.414214 is the paper's
    // rounding of sqrt(2), kept verbatim).
    #[allow(clippy::approx_constant)]
    fn metrics_match_table1_abs_sums() {
        let expected = [
            (1.952105, 1.835126),
            (1.857495, 2.125814),
            (1.930526, 1.683160),
            (2.121320, 1.414214),
            (1.414214, 1.767767),
            (2.386485, 1.414213),
        ];
        for (id, (a, s)) in FilterId::ALL.iter().zip(expected) {
            let m = BankMetrics::of(&FilterBank::table1(*id));
            assert!((m.analysis_lowpass_abs_sum - a).abs() < 5e-5, "{id}");
            assert!((m.synthesis_lowpass_abs_sum - s).abs() < 5e-5, "{id}");
            // The derived analysis high-pass has the synthesis low-pass taps
            // (up to sign), so the absolute sums coincide.
            assert!((m.analysis_highpass_abs_sum - s).abs() < 5e-5, "{id}");
        }
    }

    #[test]
    fn growth_is_between_one_and_three_bits_per_scale() {
        for id in FilterId::ALL {
            let m = BankMetrics::of(&FilterBank::table1(id));
            let bits = m.growth_bits_per_scale();
            assert!(bits > 0.9 && bits < 2.6, "{id}: {bits}");
        }
    }

    #[test]
    fn all_table1_banks_are_biorthogonal_to_printed_precision() {
        // Coefficients are printed with 6 decimals, so the residual of the
        // perfect-reconstruction condition is a few 1e-6.
        for bank in FilterBank::all_table1() {
            let rep = BiorthogonalityReport::of(&bank);
            assert!(
                rep.is_biorthogonal(5e-5),
                "{}: worst biorthogonality error {:.3e}",
                bank.id(),
                rep.worst_error()
            );
        }
    }

    #[test]
    fn refined_banks_are_biorthogonal_to_much_higher_precision() {
        for id in [FilterId::F1, FilterId::F4, FilterId::F5, FilterId::F6] {
            let bank = FilterBank::with_precision(id, CoefficientPrecision::Refined);
            let rep = BiorthogonalityReport::of(&bank);
            assert!(
                rep.is_biorthogonal(1e-12),
                "{id}: worst refined biorthogonality error {:.3e}",
                rep.worst_error()
            );
        }
    }

    #[test]
    fn max_abs_coefficient_is_reasonable() {
        for id in FilterId::ALL {
            let m = BankMetrics::of(&FilterBank::table1(id));
            assert!(m.max_abs_coefficient > 0.3);
            assert!(m.max_abs_coefficient < 1.25, "{id}: {}", m.max_abs_coefficient);
        }
    }

    #[test]
    fn reports_display_meaningfully() {
        let bank = FilterBank::table1(FilterId::F4);
        assert!(BankMetrics::of(&bank).to_string().contains("F4"));
        assert!(BiorthogonalityReport::of(&bank).to_string().contains("zero-lag"));
    }
}
