//! The raw data of Table I of the paper.
//!
//! Each entry records the analysis (`H`) and synthesis (`H̃`) low-pass
//! filters of one of the six Villasenor banks, exactly as printed: the filter
//! length and the coefficients from the origin outwards (negative indices
//! follow from the symmetry of the QMF).

/// One row pair of Table I: a filter bank's two low-pass prototypes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Entry {
    /// Bank label as printed ("F1" … "F6").
    pub label: &'static str,
    /// Length of the analysis low-pass filter `H`.
    pub analysis_len: usize,
    /// Printed coefficients of `H` (origin outwards; the remaining taps
    /// follow by symmetry).
    pub analysis_half: &'static [f64],
    /// Sum of absolute values of all taps of `H` as printed in Table I.
    pub analysis_abs_sum: f64,
    /// Length of the synthesis low-pass filter `H̃`.
    pub synthesis_len: usize,
    /// Printed coefficients of `H̃`.
    pub synthesis_half: &'static [f64],
    /// Sum of absolute values of all taps of `H̃` as printed in Table I.
    pub synthesis_abs_sum: f64,
}

/// Table I of the paper: the six filter banks best suited to image
/// compression according to Villasenor et al.
// Coefficients are the paper's printed 6-decimal values (e.g. 0.707107),
// kept verbatim rather than replaced with f64 consts.
#[allow(clippy::approx_constant)]
pub const TABLE1: [Table1Entry; 6] = [
    // F1 — the 9/7 bank
    Table1Entry {
        label: "F1",
        analysis_len: 9,
        analysis_half: &[0.852699, 0.377402, -0.110624, -0.023849, 0.037828],
        analysis_abs_sum: 1.952105,
        synthesis_len: 7,
        synthesis_half: &[0.788486, 0.418092, -0.040689, -0.064539],
        synthesis_abs_sum: 1.835126,
    },
    // F2 — the 13/11 bank
    Table1Entry {
        label: "F2",
        analysis_len: 13,
        analysis_half: &[0.767245, 0.383269, -0.068878, -0.033475, 0.047282, 0.003759, -0.008473],
        analysis_abs_sum: 1.857495,
        synthesis_len: 11,
        synthesis_half: &[0.832848, 0.448109, -0.069163, -0.108737, 0.006292, 0.014182],
        synthesis_abs_sum: 2.125814,
    },
    // F3 — the 6/10 bank (half-sample symmetric)
    Table1Entry {
        label: "F3",
        analysis_len: 6,
        analysis_half: &[0.788486, 0.047699, -0.129078],
        analysis_abs_sum: 1.930526,
        synthesis_len: 10,
        synthesis_half: &[0.615051, 0.133389, -0.067237, 0.006989, 0.018914],
        synthesis_abs_sum: 1.683160,
    },
    // F4 — the 5/3 bank (LeGall)
    Table1Entry {
        label: "F4",
        analysis_len: 5,
        analysis_half: &[1.060660, 0.353553, -0.176777],
        analysis_abs_sum: 2.121320,
        synthesis_len: 3,
        synthesis_half: &[0.707107, 0.353553],
        synthesis_abs_sum: 1.414214,
    },
    // F5 — the 2/6 bank (Haar analysis, half-sample symmetric)
    Table1Entry {
        label: "F5",
        analysis_len: 2,
        analysis_half: &[0.707107],
        analysis_abs_sum: 1.414214,
        synthesis_len: 6,
        synthesis_half: &[0.707107, 0.088388, -0.088388],
        synthesis_abs_sum: 1.767767,
    },
    // F6 — the 9/3 bank
    Table1Entry {
        label: "F6",
        analysis_len: 9,
        analysis_half: &[0.994369, 0.419845, -0.176777, -0.066291, 0.033145],
        analysis_abs_sum: 2.386485,
        synthesis_len: 3,
        synthesis_half: &[0.707107, 0.353553],
        synthesis_abs_sum: 1.414213,
    },
];

impl Table1Entry {
    /// Returns `true` when the analysis filter length is odd (whole-sample
    /// symmetric bank).
    #[must_use]
    pub fn is_whole_sample_symmetric(&self) -> bool {
        self.analysis_len % 2 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expanded_abs_sum(half: &[f64], len: usize) -> f64 {
        if len % 2 == 1 {
            // whole-sample symmetric: c0 counted once, the rest twice
            half[0].abs() + 2.0 * half[1..].iter().map(|c| c.abs()).sum::<f64>()
        } else {
            2.0 * half.iter().map(|c| c.abs()).sum::<f64>()
        }
    }

    #[test]
    fn six_banks_present_with_expected_lengths() {
        assert_eq!(TABLE1.len(), 6);
        let lens: Vec<(usize, usize)> =
            TABLE1.iter().map(|e| (e.analysis_len, e.synthesis_len)).collect();
        assert_eq!(lens, vec![(9, 7), (13, 11), (6, 10), (5, 3), (2, 6), (9, 3)]);
    }

    #[test]
    fn half_lists_have_consistent_length() {
        for e in &TABLE1 {
            let expected_analysis =
                if e.analysis_len % 2 == 1 { e.analysis_len / 2 + 1 } else { e.analysis_len / 2 };
            let expected_synthesis = if e.synthesis_len % 2 == 1 {
                e.synthesis_len / 2 + 1
            } else {
                e.synthesis_len / 2
            };
            assert_eq!(e.analysis_half.len(), expected_analysis, "{}", e.label);
            assert_eq!(e.synthesis_half.len(), expected_synthesis, "{}", e.label);
        }
    }

    #[test]
    fn printed_abs_sums_match_expansion() {
        // The Σ|c_n| column of Table I must agree with the expanded filters
        // to the printed precision (6 decimals, so tolerate a couple of ulps
        // of the last printed digit).
        for e in &TABLE1 {
            let a = expanded_abs_sum(e.analysis_half, e.analysis_len);
            let s = expanded_abs_sum(e.synthesis_half, e.synthesis_len);
            assert!(
                (a - e.analysis_abs_sum).abs() < 5e-5,
                "{}: analysis abs sum {a} vs printed {}",
                e.label,
                e.analysis_abs_sum
            );
            assert!(
                (s - e.synthesis_abs_sum).abs() < 5e-5,
                "{}: synthesis abs sum {s} vs printed {}",
                e.label,
                e.synthesis_abs_sum
            );
        }
    }

    #[test]
    fn dc_gain_is_sqrt_two() {
        // All Table I low-pass filters are normalized to a DC gain of √2.
        for e in &TABLE1 {
            let expand_sum = |half: &[f64], len: usize| {
                if len % 2 == 1 {
                    half[0] + 2.0 * half[1..].iter().sum::<f64>()
                } else {
                    2.0 * half.iter().sum::<f64>()
                }
            };
            let a = expand_sum(e.analysis_half, e.analysis_len);
            let s = expand_sum(e.synthesis_half, e.synthesis_len);
            assert!((a - std::f64::consts::SQRT_2).abs() < 1e-5, "{} analysis DC {a}", e.label);
            assert!((s - std::f64::consts::SQRT_2).abs() < 1e-5, "{} synthesis DC {s}", e.label);
        }
    }

    #[test]
    fn symmetry_classes() {
        let whole: Vec<&str> =
            TABLE1.iter().filter(|e| e.is_whole_sample_symmetric()).map(|e| e.label).collect();
        assert_eq!(whole, vec!["F1", "F2", "F4", "F6"]);
    }
}
