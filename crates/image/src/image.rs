//! Row-major integer raster.

use crate::view::check_rect;
use crate::{ImageError, ImageView, ImageViewMut, TileRect};
use std::fmt;

/// A grayscale image with signed integer samples and an explicit bit depth.
///
/// Medical modalities in the paper's scope (X-ray CT) deliver 12-bit
/// unsigned samples; the DWT datapath treats them as 13-bit signed values
/// (sign + 12 magnitude bits). The container stores `i32` samples and records
/// the nominal unsigned bit depth so workload generators, the word-length
/// analysis and the entropy coder agree on ranges.
///
/// ```
/// use lwc_image::Image;
/// # fn main() -> Result<(), lwc_image::ImageError> {
/// let img = Image::from_samples(2, 2, 8, vec![0, 255, 10, 20])?;
/// assert_eq!(img.get(1, 0), 255);
/// assert_eq!(img.row(1), &[10, 20]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    bit_depth: u32,
    samples: Vec<i32>,
}

impl Image {
    /// Creates a zero-filled image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero width/height and
    /// [`ImageError::InvalidBitDepth`] for depths outside 1–16.
    pub fn zeros(width: usize, height: usize, bit_depth: u32) -> Result<Self, ImageError> {
        Self::from_samples(width, height, bit_depth, vec![0; width.saturating_mul(height)])
    }

    /// Creates an image from a row-major sample buffer.
    ///
    /// # Errors
    ///
    /// * [`ImageError::InvalidDimensions`] if the buffer length differs from
    ///   `width * height` or a dimension is zero.
    /// * [`ImageError::InvalidBitDepth`] if `bit_depth` is outside 1–16.
    /// * [`ImageError::SampleOutOfRange`] if a sample exceeds the unsigned
    ///   range of `bit_depth` bits.
    pub fn from_samples(
        width: usize,
        height: usize,
        bit_depth: u32,
        samples: Vec<i32>,
    ) -> Result<Self, ImageError> {
        if width == 0 || height == 0 || samples.len() != width * height {
            return Err(ImageError::InvalidDimensions { width, height, samples: samples.len() });
        }
        if bit_depth == 0 || bit_depth > 16 {
            return Err(ImageError::InvalidBitDepth(bit_depth));
        }
        let max = (1i32 << bit_depth) - 1;
        if let Some(&value) = samples.iter().find(|&&v| v < 0 || v > max) {
            return Err(ImageError::SampleOutOfRange { value, bit_depth });
        }
        Ok(Self { width, height, bit_depth, samples })
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Nominal unsigned bit depth of the samples.
    #[must_use]
    pub fn bit_depth(&self) -> u32 {
        self.bit_depth
    }

    /// Number of pixels.
    #[must_use]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Largest representable sample value for the bit depth.
    #[must_use]
    pub fn max_sample(&self) -> i32 {
        (1i32 << self.bit_depth) - 1
    }

    /// Sample at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> i32 {
        self.view().get(x, y)
    }

    /// Row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[must_use]
    pub fn row(&self, y: usize) -> &[i32] {
        self.view().row(y)
    }

    /// The borrowed full-frame view of this image (O(1), no copy). All
    /// rectangular accessors are defined in terms of this view, so owned and
    /// tiled code paths share one implementation.
    ///
    /// ```
    /// use lwc_image::synth;
    ///
    /// let image = synth::gradient(32, 16, 12);
    /// let view = image.view();
    /// assert_eq!(view.row(3), image.row(3));
    /// ```
    #[must_use]
    pub fn view(&self) -> ImageView<'_> {
        ImageView::from_raw(&self.samples, self.width, self.height, self.width, self.bit_depth)
            .expect("a validated image is always a valid view")
    }

    /// A borrowed view of the `rect` window of this image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `rect` does not fit.
    pub fn view_rect(&self, rect: TileRect) -> Result<ImageView<'_>, ImageError> {
        self.view().subview(rect)
    }

    /// The mutable full-frame view.
    #[must_use]
    pub fn view_mut(&mut self) -> ImageViewMut<'_> {
        ImageViewMut::from_raw(
            &mut self.samples,
            self.width,
            self.height,
            self.width,
            self.bit_depth,
        )
        .expect("a validated image is always a valid view")
    }

    /// A mutable view of the `rect` window, used to scatter decoded tiles
    /// into a frame.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `rect` does not fit.
    pub fn view_rect_mut(&mut self, rect: TileRect) -> Result<ImageViewMut<'_>, ImageError> {
        check_rect(rect, self.width, self.height)?;
        ImageViewMut::from_raw(
            &mut self.samples[rect.y * self.width + rect.x..],
            rect.width,
            rect.height,
            self.width,
            self.bit_depth,
        )
    }

    /// Copies the `rect` window out into an owned image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `rect` does not fit.
    pub fn crop(&self, rect: TileRect) -> Result<Image, ImageError> {
        self.view_rect(rect)?.to_image()
    }

    /// All samples in row-major order.
    #[must_use]
    pub fn samples(&self) -> &[i32] {
        &self.samples
    }

    /// Consumes the image and returns the sample buffer.
    #[must_use]
    pub fn into_samples(self) -> Vec<i32> {
        self.samples
    }

    /// Returns `true` if the image is square with a power-of-two side — the
    /// shape the pyramid algorithm (and the paper's 512×512 workload) uses.
    #[must_use]
    pub fn is_dyadic_square(&self) -> bool {
        self.width == self.height && self.width.is_power_of_two()
    }

    /// Returns the largest number of decomposition scales applicable to this
    /// image (each scale halves both dimensions; both halves must stay even
    /// until the last scale).
    #[must_use]
    pub fn max_scales(&self) -> u32 {
        self.view().max_scales()
    }

    /// Checks that two images have identical dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::ShapeMismatch`] when they differ.
    pub fn check_same_shape(&self, other: &Image) -> Result<(), ImageError> {
        if self.width != other.width || self.height != other.height {
            return Err(ImageError::ShapeMismatch {
                left: (self.width, self.height),
                right: (other.width, other.height),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} image, {}-bit", self.width, self.height, self.bit_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(Image::zeros(4, 4, 12).is_ok());
        assert!(matches!(Image::zeros(0, 4, 12), Err(ImageError::InvalidDimensions { .. })));
        assert!(matches!(Image::zeros(4, 4, 0), Err(ImageError::InvalidBitDepth(0))));
        assert!(matches!(Image::zeros(4, 4, 17), Err(ImageError::InvalidBitDepth(17))));
        assert!(matches!(
            Image::from_samples(2, 1, 8, vec![1, 2, 3]),
            Err(ImageError::InvalidDimensions { .. })
        ));
        assert!(matches!(
            Image::from_samples(2, 1, 8, vec![1, 300]),
            Err(ImageError::SampleOutOfRange { value: 300, .. })
        ));
        assert!(matches!(
            Image::from_samples(2, 1, 8, vec![-1, 0]),
            Err(ImageError::SampleOutOfRange { value: -1, .. })
        ));
    }

    #[test]
    fn accessors_return_expected_values() {
        let img = Image::from_samples(3, 2, 12, vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.bit_depth(), 12);
        assert_eq!(img.pixel_count(), 6);
        assert_eq!(img.max_sample(), 4095);
        assert_eq!(img.get(2, 1), 6);
        assert_eq!(img.row(0), &[1, 2, 3]);
        assert_eq!(img.samples().len(), 6);
        assert_eq!(img.clone().into_samples(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let img = Image::zeros(2, 2, 8).unwrap();
        let _ = img.get(2, 0);
    }

    #[test]
    fn dyadic_square_and_scales() {
        let img = Image::zeros(512, 512, 12).unwrap();
        assert!(img.is_dyadic_square());
        assert!(img.max_scales() >= 6, "a 512x512 image supports the paper's 6 scales");
        let img = Image::zeros(48, 20, 8).unwrap();
        assert!(!img.is_dyadic_square());
        assert_eq!(img.max_scales(), 2);
        let img = Image::zeros(3, 3, 8).unwrap();
        assert_eq!(img.max_scales(), 0);
    }

    #[test]
    fn shape_check() {
        let a = Image::zeros(4, 4, 8).unwrap();
        let b = Image::zeros(4, 8, 8).unwrap();
        assert!(a.check_same_shape(&a).is_ok());
        assert!(a.check_same_shape(&b).is_err());
    }

    #[test]
    fn display_mentions_shape_and_depth() {
        let img = Image::zeros(16, 8, 12).unwrap();
        assert_eq!(img.to_string(), "16x8 image, 12-bit");
    }
}
