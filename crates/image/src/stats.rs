//! Image statistics used by the lossless verification and the compression
//! examples.

use crate::{Image, ImageError};
use std::collections::HashMap;

/// Minimum and maximum sample value of an image.
#[must_use]
pub fn min_max(image: &Image) -> (i32, i32) {
    let mut min = i32::MAX;
    let mut max = i32::MIN;
    for &v in image.samples() {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

/// Mean sample value.
#[must_use]
pub fn mean(image: &Image) -> f64 {
    image.samples().iter().map(|&v| v as f64).sum::<f64>() / image.pixel_count() as f64
}

/// Sample variance (population form).
#[must_use]
pub fn variance(image: &Image) -> f64 {
    let m = mean(image);
    image.samples().iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>()
        / image.pixel_count() as f64
}

/// Zeroth-order entropy of the sample values in bits per pixel.
///
/// This is the information-theoretic lower bound for a memoryless coder and
/// the usual yardstick compression examples report against.
#[must_use]
pub fn entropy_bits_per_pixel(image: &Image) -> f64 {
    let mut counts: HashMap<i32, u64> = HashMap::new();
    for &v in image.samples() {
        *counts.entry(v).or_insert(0) += 1;
    }
    let n = image.pixel_count() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Zeroth-order entropy of the horizontal first differences in bits per
/// pixel — a crude but effective measure of how compressible the image is
/// with any predictive/transform scheme.
#[must_use]
pub fn first_difference_entropy(image: &Image) -> f64 {
    let mut counts: HashMap<i32, u64> = HashMap::new();
    let mut n = 0u64;
    for y in 0..image.height() {
        let row = image.row(y);
        for x in 1..row.len() {
            *counts.entry(row[x] - row[x - 1]).or_insert(0) += 1;
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.log2()
        })
        .sum()
}

/// Largest absolute pixel difference between two images.
///
/// A value of `0` is the paper's lossless criterion: *"the reconstructed
/// image might be not numerically identical to the original one, on a
/// pixel-by-pixel basis"* — we require that it is.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn max_abs_diff(a: &Image, b: &Image) -> Result<i32, ImageError> {
    a.check_same_shape(b)?;
    Ok(a.samples().iter().zip(b.samples()).map(|(&x, &y)| (x - y).abs()).max().unwrap_or(0))
}

/// Mean squared error between two images.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn mse(a: &Image, b: &Image) -> Result<f64, ImageError> {
    a.check_same_shape(b)?;
    let sum: f64 =
        a.samples().iter().zip(b.samples()).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum();
    Ok(sum / a.pixel_count() as f64)
}

/// Peak signal-to-noise ratio in dB, relative to the peak of `a`'s bit depth.
/// Returns `f64::INFINITY` for identical images.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn psnr(a: &Image, b: &Image) -> Result<f64, ImageError> {
    let e = mse(a, b)?;
    if e == 0.0 {
        return Ok(f64::INFINITY);
    }
    let peak = a.max_sample() as f64;
    Ok(10.0 * (peak * peak / e).log10())
}

/// Returns `true` when two images are identical pixel-by-pixel.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn bit_exact(a: &Image, b: &Image) -> Result<bool, ImageError> {
    Ok(max_abs_diff(a, b)? == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn min_max_mean_variance_of_known_image() {
        let img = Image::from_samples(2, 2, 8, vec![0, 2, 4, 6]).unwrap();
        assert_eq!(min_max(&img), (0, 6));
        assert_eq!(mean(&img), 3.0);
        assert_eq!(variance(&img), 5.0);
    }

    #[test]
    fn entropy_of_flat_image_is_zero() {
        let img = synth::flat(16, 16, 12, 100);
        assert_eq!(entropy_bits_per_pixel(&img), 0.0);
        assert_eq!(first_difference_entropy(&img), 0.0);
    }

    #[test]
    fn entropy_of_random_image_approaches_bit_depth() {
        let img = synth::random_image(128, 128, 8, 5);
        let h = entropy_bits_per_pixel(&img);
        assert!(h > 7.8 && h <= 8.0, "uniform 8-bit noise has ~8 bpp entropy, got {h}");
    }

    #[test]
    fn difference_entropy_rewards_smoothness() {
        let smooth = synth::gradient(128, 128, 12);
        let noisy = synth::random_image(128, 128, 12, 5);
        assert!(first_difference_entropy(&smooth) < 2.0);
        assert!(first_difference_entropy(&noisy) > 10.0);
    }

    #[test]
    fn diff_metrics_between_identical_images() {
        let img = synth::ct_phantom(32, 32, 12, 0);
        assert_eq!(max_abs_diff(&img, &img).unwrap(), 0);
        assert_eq!(mse(&img, &img).unwrap(), 0.0);
        assert_eq!(psnr(&img, &img).unwrap(), f64::INFINITY);
        assert!(bit_exact(&img, &img).unwrap());
    }

    #[test]
    fn diff_metrics_detect_single_pixel_change() {
        let a = synth::flat(4, 4, 8, 10);
        let mut samples = a.samples().to_vec();
        samples[5] = 13;
        let b = Image::from_samples(4, 4, 8, samples).unwrap();
        assert_eq!(max_abs_diff(&a, &b).unwrap(), 3);
        assert!((mse(&a, &b).unwrap() - 9.0 / 16.0).abs() < 1e-12);
        assert!(!bit_exact(&a, &b).unwrap());
        assert!(psnr(&a, &b).unwrap() > 40.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = synth::flat(4, 4, 8, 1);
        let b = synth::flat(4, 8, 8, 1);
        assert!(max_abs_diff(&a, &b).is_err());
        assert!(mse(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
    }
}
