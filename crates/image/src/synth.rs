//! Synthetic workload generators.
//!
//! The paper validates its hardware on *"data taken from random images"* and
//! motivates the design with 512×512 12-bit X-ray CT studies. Real patient
//! data cannot ship with a reproduction, so these generators provide the
//! closest synthetic equivalents:
//!
//! * [`random_image`] — uniformly random samples, the paper's own validation
//!   input and the worst case for dynamic-range growth,
//! * [`ct_phantom`] — a Shepp–Logan-style elliptical phantom with 12-bit
//!   tissue contrast, mimicking the statistics of a CT slice,
//! * [`mr_slice`] — a smooth anatomical background with superimposed fine
//!   texture and mild noise, mimicking an MR acquisition,
//! * [`gradient`] and [`checkerboard`] — deterministic patterns used by edge
//!   case and schedule tests.

use crate::{Image, ImageStack};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniformly random image of the given bit depth (each sample independent),
/// reproducible from `seed`.
///
/// # Panics
///
/// Panics if the dimensions are zero or the bit depth is outside 1–16
/// (programmer error in test/bench setup code).
#[must_use]
pub fn random_image(width: usize, height: usize, bit_depth: u32, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let max = (1i32 << bit_depth) - 1;
    let samples = (0..width * height).map(|_| rng.gen_range(0..=max)).collect();
    Image::from_samples(width, height, bit_depth, samples)
        .expect("random_image parameters must be valid")
}

/// An ellipse description used by [`ct_phantom`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ellipse {
    /// Center, as a fraction of the image size in [-1, 1].
    cx: f64,
    cy: f64,
    /// Semi-axes as fractions of the half-size.
    rx: f64,
    ry: f64,
    /// Rotation in radians.
    theta: f64,
    /// Additive intensity contribution in normalized units.
    intensity: f64,
}

// The ellipse parameters follow the Shepp-Logan convention; 1.5707963 is
// the table's printed 7-digit right angle, kept verbatim rather than PI/2.
#[allow(clippy::approx_constant)]
const PHANTOM_ELLIPSES: [Ellipse; 8] = [
    Ellipse { cx: 0.0, cy: 0.0, rx: 0.92, ry: 0.69, theta: 1.5707963, intensity: 1.0 },
    Ellipse { cx: 0.0, cy: -0.0184, rx: 0.874, ry: 0.6624, theta: 1.5707963, intensity: -0.8 },
    Ellipse { cx: 0.22, cy: 0.0, rx: 0.31, ry: 0.11, theta: 1.2566370, intensity: -0.2 },
    Ellipse { cx: -0.22, cy: 0.0, rx: 0.41, ry: 0.16, theta: 1.8849555, intensity: -0.2 },
    Ellipse { cx: 0.0, cy: 0.35, rx: 0.25, ry: 0.21, theta: 1.5707963, intensity: 0.1 },
    Ellipse { cx: 0.0, cy: 0.1, rx: 0.046, ry: 0.046, theta: 0.0, intensity: 0.15 },
    Ellipse { cx: -0.08, cy: -0.605, rx: 0.046, ry: 0.023, theta: 0.0, intensity: 0.15 },
    Ellipse { cx: 0.06, cy: -0.605, rx: 0.046, ry: 0.023, theta: 1.5707963, intensity: 0.15 },
];

/// A CT-like elliptical phantom (Shepp–Logan inspired) rendered at the given
/// size and bit depth, with a small amount of acquisition noise controlled by
/// `seed`.
///
/// The result has the large smooth regions, sharp tissue boundaries and
/// bounded contrast typical of reconstructed CT slices — the workload the
/// paper's compression target cares about.
///
/// # Panics
///
/// Panics on zero dimensions or unsupported bit depth.
#[must_use]
pub fn ct_phantom(width: usize, height: usize, bit_depth: u32, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(width * height);
    render_phantom_slice(width, height, bit_depth, 1.0, 0.001, &mut rng, &mut samples);
    Image::from_samples(width, height, bit_depth, samples)
        .expect("ct_phantom parameters must be valid")
}

/// Renders one phantom slice with every ellipse's semi-axes scaled by
/// `axis_scale` and uniform acquisition noise of `noise_amplitude` (in
/// normalized intensity units), appending `width * height` quantized samples.
fn render_phantom_slice(
    width: usize,
    height: usize,
    bit_depth: u32,
    axis_scale: f64,
    noise_amplitude: f64,
    rng: &mut StdRng,
    samples: &mut Vec<i32>,
) {
    let max = (1i32 << bit_depth) - 1;
    // 3×3 supersampling softens the tissue boundaries over about one pixel,
    // like the finite resolution of a real reconstruction kernel. Without it
    // every ellipse boundary would be an ideal step edge, which makes the
    // phantom unrealistically hard to compress at small raster sizes.
    const SS: usize = 3;
    for y in 0..height {
        for x in 0..width {
            let mut v = 0.0;
            for sy in 0..SS {
                for sx in 0..SS {
                    // Map the sub-sample to [-1, 1] coordinates.
                    let fx = 2.0 * (x as f64 + (sx as f64 + 0.5) / SS as f64) / width as f64 - 1.0;
                    let fy = 2.0 * (y as f64 + (sy as f64 + 0.5) / SS as f64) / height as f64 - 1.0;
                    for e in &PHANTOM_ELLIPSES {
                        let dx = fx - e.cx;
                        let dy = fy - e.cy;
                        let (s, c) = e.theta.sin_cos();
                        let xr = dx * c + dy * s;
                        let yr = -dx * s + dy * c;
                        let rx = e.rx * axis_scale;
                        let ry = e.ry * axis_scale;
                        if (xr / rx).powi(2) + (yr / ry).powi(2) <= 1.0 {
                            v += e.intensity;
                        }
                    }
                }
            }
            v /= (SS * SS) as f64;
            // Normalize into [0, 1], add a small amount of acquisition
            // noise (a few grey levels, as in a well-dosed CT), quantize.
            let noise = rng.gen_range(-noise_amplitude..noise_amplitude);
            let norm = ((v + 0.2) / 1.4 + noise).clamp(0.0, 1.0);
            samples.push((norm * max as f64).round() as i32);
        }
    }
}

/// A CT-like *volume*: the elliptical phantom of [`ct_phantom`] re-rendered
/// per slice with smoothly varying ellipse axes, as if scanning through a
/// head from crown to base. Adjacent slices are strongly correlated (the
/// anatomy changes by a fraction of a pixel per slice) while still differing
/// everywhere, so a z-decorrelating transform has real redundancy to remove —
/// the workload the 3-D datapath exists for. The per-voxel acquisition noise
/// is kept at dither level (a fraction of one grey step): independent
/// per-slice noise is the component *no* z transform can compress, so a
/// volume drowned in it would measure the noise generator, not the datapath.
///
/// # Panics
///
/// Panics on zero dimensions or unsupported bit depth.
#[must_use]
pub fn ct_volume(
    width: usize,
    height: usize,
    depth: usize,
    bit_depth: u32,
    seed: u64,
) -> ImageStack {
    assert!(depth > 0, "ct_volume depth must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(width * height * depth);
    for z in 0..depth {
        // Map the slice position to [-1, 1] through the volume, then shrink
        // the anatomy toward the ends of the scan: full size mid-volume,
        // ~95% at either end. The tissue boundaries sweep a few pixels over
        // the whole stack — a fraction of a pixel per slice, the thin-slice
        // regime where adjacent reconstructions are strongly correlated. A
        // faster sweep would make each z-difference plane a full-contrast
        // double-edged ring, *more* expensive than the slice it came from.
        let t = if depth == 1 { 0.0 } else { 2.0 * z as f64 / (depth - 1) as f64 - 1.0 };
        let axis_scale = (1.0 - 0.1 * t * t).sqrt();
        render_phantom_slice(width, height, bit_depth, axis_scale, 0.0001, &mut rng, &mut samples);
    }
    ImageStack::from_samples(width, height, depth, bit_depth, samples)
        .expect("ct_volume parameters must be valid")
}

/// An MR-like slice: smooth low-frequency anatomy plus fine sinusoidal
/// texture and mild noise.
///
/// # Panics
///
/// Panics on zero dimensions or unsupported bit depth.
#[must_use]
pub fn mr_slice(width: usize, height: usize, bit_depth: u32, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let max = (1i32 << bit_depth) - 1;
    let mut samples = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let fx = x as f64 / width as f64;
            let fy = y as f64 / height as f64;
            // Smooth anatomy: two broad Gaussian-ish lobes.
            let lobe = |cx: f64, cy: f64, s: f64| {
                let d2 = (fx - cx).powi(2) + (fy - cy).powi(2);
                (-d2 / s).exp()
            };
            let anatomy = 0.65 * lobe(0.38, 0.5, 0.06) + 0.65 * lobe(0.62, 0.5, 0.06);
            // Fine texture (gyri-like ripples) plus acquisition noise.
            let texture = 0.06 * ((fx * 40.0).sin() * (fy * 34.0).cos());
            let noise = rng.gen_range(-0.01..0.01);
            let norm = (anatomy + texture + noise).clamp(0.0, 1.0);
            samples.push((norm * max as f64).round() as i32);
        }
    }
    Image::from_samples(width, height, bit_depth, samples)
        .expect("mr_slice parameters must be valid")
}

/// A horizontal gradient covering the full dynamic range — useful to probe
/// border handling (the circular extension wraps a bright edge onto a dark
/// one).
///
/// # Panics
///
/// Panics on zero dimensions or unsupported bit depth.
#[must_use]
pub fn gradient(width: usize, height: usize, bit_depth: u32) -> Image {
    let max = (1i32 << bit_depth) - 1;
    let samples = (0..width * height)
        .map(|i| {
            let x = i % width;
            ((x as i64 * max as i64) / (width.max(2) as i64 - 1)) as i32
        })
        .collect();
    Image::from_samples(width, height, bit_depth, samples)
        .expect("gradient parameters must be valid")
}

/// A full-contrast checkerboard with `period`-pixel squares — the highest
/// frequency content possible, maximizing detail-band energy.
///
/// # Panics
///
/// Panics on zero dimensions, unsupported bit depth or zero period.
#[must_use]
pub fn checkerboard(width: usize, height: usize, bit_depth: u32, period: usize) -> Image {
    assert!(period > 0, "checkerboard period must be positive");
    let max = (1i32 << bit_depth) - 1;
    let samples = (0..width * height)
        .map(|i| {
            let x = (i % width) / period;
            let y = (i / width) / period;
            if (x + y) % 2 == 0 {
                max
            } else {
                0
            }
        })
        .collect();
    Image::from_samples(width, height, bit_depth, samples)
        .expect("checkerboard parameters must be valid")
}

/// A constant (flat) image — the degenerate case where every detail subband
/// must be exactly zero for a DC-preserving filter bank.
///
/// # Panics
///
/// Panics on zero dimensions, unsupported bit depth or out-of-range value.
#[must_use]
pub fn flat(width: usize, height: usize, bit_depth: u32, value: i32) -> Image {
    Image::from_samples(width, height, bit_depth, vec![value; width * height])
        .expect("flat parameters must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn random_image_is_reproducible_and_in_range() {
        let a = random_image(32, 16, 12, 42);
        let b = random_image(32, 16, 12, 42);
        let c = random_image(32, 16, 12, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.samples().iter().all(|&v| (0..=4095).contains(&v)));
    }

    #[test]
    fn ct_phantom_has_structure() {
        let img = ct_phantom(64, 64, 12, 1);
        // The phantom has both dark background and bright tissue.
        let (min, max) = stats::min_max(&img);
        assert!(min < 1000, "background should be dark, min={min}");
        assert!(max > 2500, "tissue should be bright, max={max}");
        // The center belongs to the head ellipse, the corner to background.
        assert!(img.get(32, 32) > img.get(1, 1));
    }

    #[test]
    fn ct_phantom_is_smoother_than_noise() {
        let phantom = ct_phantom(64, 64, 12, 1);
        let noise = random_image(64, 64, 12, 1);
        assert!(
            stats::first_difference_entropy(&phantom) < stats::first_difference_entropy(&noise)
        );
    }

    #[test]
    fn mr_slice_in_range_and_structured() {
        let img = mr_slice(64, 64, 12, 3);
        assert!(img.samples().iter().all(|&v| (0..=4095).contains(&v)));
        // The lobes are brighter than the corners.
        assert!(img.get(24, 32) > img.get(0, 0));
    }

    #[test]
    fn gradient_spans_range() {
        let img = gradient(64, 4, 8);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(63, 0), 255);
        assert!(img.get(32, 0) > img.get(16, 0));
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(8, 8, 8, 2);
        assert_eq!(img.get(0, 0), 255);
        assert_eq!(img.get(2, 0), 0);
        assert_eq!(img.get(0, 2), 0);
        assert_eq!(img.get(2, 2), 255);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn checkerboard_rejects_zero_period() {
        let _ = checkerboard(8, 8, 8, 0);
    }

    #[test]
    fn flat_image_is_constant() {
        let img = flat(16, 16, 12, 1234);
        assert!(img.samples().iter().all(|&v| v == 1234));
    }

    #[test]
    fn generators_honour_requested_shape() {
        for img in [
            random_image(48, 24, 10, 0),
            ct_phantom(48, 24, 10, 0),
            mr_slice(48, 24, 10, 0),
            gradient(48, 24, 10),
            checkerboard(48, 24, 10, 3),
            flat(48, 24, 10, 7),
        ] {
            assert_eq!(img.width(), 48);
            assert_eq!(img.height(), 24);
            assert_eq!(img.bit_depth(), 10);
        }
    }
}
