//! Borrowed, strided views into an [`Image`] and the tile grid that
//! partitions one.
//!
//! A [`TileGrid`] splits an image into rectangular tiles (with ragged right
//! and bottom edges when the dimensions are not multiples of the tile size);
//! an [`ImageView`] borrows one such rectangle without copying it, and an
//! [`ImageViewMut`] is the writable counterpart used to scatter decoded tiles
//! back into a full-size frame. The whole-image accessors of [`Image`] are
//! expressed over the full-frame view, so the monolithic and tiled code paths
//! share one implementation.

use crate::{Image, ImageError};

/// A rectangle inside an image, in pixel coordinates.
///
/// Produced by [`TileGrid::rect`] and consumed by [`Image::view_rect`] /
/// [`Image::view_rect_mut`]; also used for subband geometry by the transform
/// crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRect {
    /// Left edge (column of the first pixel).
    pub x: usize,
    /// Top edge (row of the first pixel).
    pub y: usize,
    /// Width in pixels (may be zero for degenerate subband rectangles).
    pub width: usize,
    /// Height in pixels (may be zero for degenerate subband rectangles).
    pub height: usize,
}

impl TileRect {
    /// Number of pixels covered.
    #[must_use]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// `true` if the rectangle covers no pixels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// One past the right edge.
    #[must_use]
    pub fn right(&self) -> usize {
        self.x + self.width
    }

    /// One past the bottom edge.
    #[must_use]
    pub fn bottom(&self) -> usize {
        self.y + self.height
    }
}

/// A read-only, possibly strided rectangular window into an image's samples.
///
/// The view borrows the underlying buffer — taking one is O(1) and never
/// copies pixel data. Rows are contiguous; consecutive rows are `stride`
/// samples apart (`stride == width` for a full-frame or owned-tile view).
///
/// ```
/// use lwc_image::{synth, TileGrid};
///
/// let image = synth::ct_phantom(100, 60, 12, 1);
/// let grid = TileGrid::new(100, 60, 32, 32).unwrap();
/// // The bottom-right tile is ragged: 4 columns by 28 rows.
/// let rect = grid.rect(grid.tile_count() - 1);
/// assert_eq!((rect.width, rect.height), (4, 28));
/// let view = image.view_rect(rect).unwrap();
/// assert_eq!(view.get(0, 0), image.get(rect.x, rect.y));
/// // Materialize the tile when an owned copy is actually needed.
/// let tile = view.to_image().unwrap();
/// assert_eq!(tile.width(), 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ImageView<'a> {
    samples: &'a [i32],
    width: usize,
    height: usize,
    stride: usize,
    bit_depth: u32,
}

impl<'a> ImageView<'a> {
    /// Builds a view over a raw strided buffer. `samples` must hold at least
    /// `(height - 1) * stride + width` values.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero dimensions, a
    /// stride shorter than the width, or a buffer too short for the geometry.
    pub fn from_raw(
        samples: &'a [i32],
        width: usize,
        height: usize,
        stride: usize,
        bit_depth: u32,
    ) -> Result<Self, ImageError> {
        check_raw_geometry(samples.len(), width, height, stride)?;
        Ok(Self { samples, width, height, stride, bit_depth })
    }

    /// View width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance between consecutive rows in the underlying buffer.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Nominal unsigned bit depth inherited from the underlying image.
    #[must_use]
    pub fn bit_depth(&self) -> u32 {
        self.bit_depth
    }

    /// Number of pixels in the view.
    #[must_use]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Sample at column `x`, row `y` of the view.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> i32 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.samples[y * self.stride + x]
    }

    /// Row `y` of the view as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[must_use]
    pub fn row(&self, y: usize) -> &'a [i32] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.samples[y * self.stride..y * self.stride + self.width]
    }

    /// A sub-window of this view. `rect` is in view coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `rect` does not fit.
    pub fn subview(&self, rect: TileRect) -> Result<ImageView<'a>, ImageError> {
        check_rect(rect, self.width, self.height)?;
        Ok(ImageView {
            samples: &self.samples[rect.y * self.stride + rect.x..],
            width: rect.width,
            height: rect.height,
            stride: self.stride,
            bit_depth: self.bit_depth,
        })
    }

    /// Copies the window into an owned [`Image`].
    ///
    /// # Errors
    ///
    /// Returns an error if the samples do not fit the recorded bit depth
    /// (impossible for views taken from a validated [`Image`]).
    pub fn to_image(&self) -> Result<Image, ImageError> {
        let mut samples = Vec::with_capacity(self.pixel_count());
        for y in 0..self.height {
            samples.extend_from_slice(self.row(y));
        }
        Image::from_samples(self.width, self.height, self.bit_depth, samples)
    }

    /// Largest decomposition depth a transform requiring even dimensions at
    /// every scale can apply to this view (see [`Image::max_scales`]).
    #[must_use]
    pub fn max_scales(&self) -> u32 {
        let mut scales = 0;
        let mut w = self.width;
        let mut h = self.height;
        while w >= 2 && h >= 2 && w % 2 == 0 && h % 2 == 0 {
            scales += 1;
            w /= 2;
            h /= 2;
        }
        scales
    }
}

/// The writable counterpart of [`ImageView`]: a strided rectangular window
/// used to scatter decoded tiles or row bands into a full-size frame without
/// materializing intermediate copies.
#[derive(Debug)]
pub struct ImageViewMut<'a> {
    samples: &'a mut [i32],
    width: usize,
    height: usize,
    stride: usize,
    bit_depth: u32,
}

impl<'a> ImageViewMut<'a> {
    /// Builds a mutable view over a raw strided buffer; see
    /// [`ImageView::from_raw`] for the geometry contract.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero dimensions, a
    /// stride shorter than the width, or a buffer too short for the geometry.
    pub fn from_raw(
        samples: &'a mut [i32],
        width: usize,
        height: usize,
        stride: usize,
        bit_depth: u32,
    ) -> Result<Self, ImageError> {
        check_raw_geometry(samples.len(), width, height, stride)?;
        Ok(Self { samples, width, height, stride, bit_depth })
    }

    /// View width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance between consecutive rows in the underlying buffer.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Nominal unsigned bit depth inherited from the underlying image.
    #[must_use]
    pub fn bit_depth(&self) -> u32 {
        self.bit_depth
    }

    /// Row `y` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[must_use]
    pub fn row_mut(&mut self, y: usize) -> &mut [i32] {
        assert!(y < self.height, "row {y} out of bounds");
        &mut self.samples[y * self.stride..y * self.stride + self.width]
    }

    /// A read-only reborrow of the same window.
    #[must_use]
    pub fn as_view(&self) -> ImageView<'_> {
        ImageView {
            samples: self.samples,
            width: self.width,
            height: self.height,
            stride: self.stride,
            bit_depth: self.bit_depth,
        }
    }

    /// Copies `source` (same shape) into this window, row by row.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::ShapeMismatch`] when the shapes differ.
    pub fn copy_from_view(&mut self, source: &ImageView<'_>) -> Result<(), ImageError> {
        if source.width() != self.width || source.height() != self.height {
            return Err(ImageError::ShapeMismatch {
                left: (self.width, self.height),
                right: (source.width(), source.height()),
            });
        }
        for y in 0..self.height {
            self.row_mut(y).copy_from_slice(source.row(y));
        }
        Ok(())
    }

    /// Copies an owned image (same shape) into this window.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::ShapeMismatch`] when the shapes differ.
    pub fn copy_from_image(&mut self, source: &Image) -> Result<(), ImageError> {
        self.copy_from_view(&source.view())
    }
}

/// The partition of a `width x height` image into rectangular tiles.
///
/// Interior tiles are `tile_width x tile_height`; tiles on the right and
/// bottom edges are clipped to the image, so every pixel belongs to exactly
/// one tile and no tile is empty. Tiles are indexed row-major.
///
/// ```
/// use lwc_image::TileGrid;
///
/// let grid = TileGrid::new(70, 50, 32, 32).unwrap();
/// assert_eq!((grid.tiles_x(), grid.tiles_y()), (3, 2));
/// // Ragged right edge: the last column of tiles is 6 pixels wide.
/// assert_eq!(grid.rect(2).width, 6);
/// // Ragged bottom edge: the last row of tiles is 18 pixels tall.
/// assert_eq!(grid.rect(5).height, 18);
/// // Every pixel is covered exactly once.
/// let covered: usize = grid.rects().map(|r| r.pixel_count()).sum();
/// assert_eq!(covered, 70 * 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    image_width: usize,
    image_height: usize,
    tile_width: usize,
    tile_height: usize,
}

impl TileGrid {
    /// Creates a grid over a `width x height` image with the given nominal
    /// tile size. Tile dimensions larger than the image are clipped (a tile
    /// size of `usize::MAX` therefore always yields a single-tile grid).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] if any dimension is zero.
    pub fn new(
        image_width: usize,
        image_height: usize,
        tile_width: usize,
        tile_height: usize,
    ) -> Result<Self, ImageError> {
        if image_width == 0 || image_height == 0 || tile_width == 0 || tile_height == 0 {
            return Err(ImageError::InvalidDimensions {
                width: image_width.min(tile_width),
                height: image_height.min(tile_height),
                samples: 0,
            });
        }
        Ok(Self {
            image_width,
            image_height,
            tile_width: tile_width.min(image_width),
            tile_height: tile_height.min(image_height),
        })
    }

    /// The single-tile grid covering the whole image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] if a dimension is zero.
    pub fn single(image_width: usize, image_height: usize) -> Result<Self, ImageError> {
        Self::new(image_width, image_height, image_width, image_height)
    }

    /// Width of the covered image.
    #[must_use]
    pub fn image_width(&self) -> usize {
        self.image_width
    }

    /// Height of the covered image.
    #[must_use]
    pub fn image_height(&self) -> usize {
        self.image_height
    }

    /// Nominal (interior) tile width.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Nominal (interior) tile height.
    #[must_use]
    pub fn tile_height(&self) -> usize {
        self.tile_height
    }

    /// Number of tile columns.
    #[must_use]
    pub fn tiles_x(&self) -> usize {
        self.image_width.div_ceil(self.tile_width)
    }

    /// Number of tile rows.
    #[must_use]
    pub fn tiles_y(&self) -> usize {
        self.image_height.div_ceil(self.tile_height)
    }

    /// Total number of tiles.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles_x() * self.tiles_y()
    }

    /// `true` if the grid is a single tile covering the whole image.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.tile_count() == 1
    }

    /// The rectangle of tile `(tx, ty)`; edge tiles are clipped to the image.
    ///
    /// # Panics
    ///
    /// Panics if `tx >= tiles_x()` or `ty >= tiles_y()`.
    #[must_use]
    pub fn rect_at(&self, tx: usize, ty: usize) -> TileRect {
        assert!(tx < self.tiles_x() && ty < self.tiles_y(), "tile ({tx},{ty}) out of bounds");
        let x = tx * self.tile_width;
        let y = ty * self.tile_height;
        TileRect {
            x,
            y,
            width: self.tile_width.min(self.image_width - x),
            height: self.tile_height.min(self.image_height - y),
        }
    }

    /// The rectangle of tile `index` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= tile_count()`.
    #[must_use]
    pub fn rect(&self, index: usize) -> TileRect {
        assert!(index < self.tile_count(), "tile index {index} out of bounds");
        self.rect_at(index % self.tiles_x(), index / self.tiles_x())
    }

    /// All tile rectangles in row-major order.
    pub fn rects(&self) -> impl Iterator<Item = TileRect> + '_ {
        (0..self.tile_count()).map(|i| self.rect(i))
    }

    /// Row-major index of the tile containing pixel `(x, y)`, or `None` if
    /// the pixel lies outside the image — the lookup behind random tile
    /// access by coordinate (region-of-interest decode).
    #[must_use]
    pub fn tile_index_at(&self, x: usize, y: usize) -> Option<usize> {
        if x >= self.image_width || y >= self.image_height {
            return None;
        }
        Some((y / self.tile_height) * self.tiles_x() + x / self.tile_width)
    }

    /// Row-major indices of the minimal tile set covering `rect` — the work
    /// list of a region-of-interest decode. `None` if the rectangle is empty
    /// or does not fit the image.
    #[must_use]
    pub fn covering_indices(&self, rect: TileRect) -> Option<Vec<usize>> {
        if rect.is_empty() || rect.right() > self.image_width || rect.bottom() > self.image_height {
            return None;
        }
        let tx0 = rect.x / self.tile_width;
        let tx1 = (rect.right() - 1) / self.tile_width;
        let ty0 = rect.y / self.tile_height;
        let ty1 = (rect.bottom() - 1) / self.tile_height;
        let mut indices = Vec::with_capacity((tx1 - tx0 + 1) * (ty1 - ty0 + 1));
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                indices.push(ty * self.tiles_x() + tx);
            }
        }
        Some(indices)
    }
}

fn check_raw_geometry(
    len: usize,
    width: usize,
    height: usize,
    stride: usize,
) -> Result<(), ImageError> {
    if width == 0 || height == 0 || stride < width {
        return Err(ImageError::InvalidDimensions { width, height, samples: len });
    }
    let needed = (height - 1).checked_mul(stride).and_then(|v| v.checked_add(width));
    if !needed.is_some_and(|n| n <= len) {
        return Err(ImageError::InvalidDimensions { width, height, samples: len });
    }
    Ok(())
}

pub(crate) fn check_rect(rect: TileRect, width: usize, height: usize) -> Result<(), ImageError> {
    if rect.is_empty() || rect.right() > width || rect.bottom() > height {
        return Err(ImageError::RegionOutOfBounds {
            rect: (rect.x, rect.y, rect.width, rect.height),
            image: (width, height),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn full_view_mirrors_the_image() {
        let image = synth::ct_phantom(48, 32, 12, 1);
        let view = image.view();
        assert_eq!(view.width(), 48);
        assert_eq!(view.height(), 32);
        assert_eq!(view.stride(), 48);
        assert_eq!(view.bit_depth(), 12);
        assert_eq!(view.pixel_count(), 48 * 32);
        assert_eq!(view.max_scales(), image.max_scales());
        for y in [0, 15, 31] {
            assert_eq!(view.row(y), image.row(y));
        }
        assert_eq!(view.get(47, 31), image.get(47, 31));
        assert_eq!(view.to_image().unwrap(), image);
    }

    #[test]
    fn rect_views_are_strided_windows() {
        let image = synth::random_image(40, 30, 12, 7);
        let rect = TileRect { x: 8, y: 5, width: 16, height: 10 };
        let view = image.view_rect(rect).unwrap();
        assert_eq!(view.stride(), 40);
        for y in 0..10 {
            for x in 0..16 {
                assert_eq!(view.get(x, y), image.get(8 + x, 5 + y));
            }
        }
        let tile = view.to_image().unwrap();
        assert_eq!(tile.width(), 16);
        assert_eq!(tile.height(), 10);
        assert_eq!(tile.get(0, 0), image.get(8, 5));
    }

    #[test]
    fn subview_composes() {
        let image = synth::gradient(32, 32, 12);
        let outer = image.view_rect(TileRect { x: 4, y: 4, width: 20, height: 20 }).unwrap();
        let inner = outer.subview(TileRect { x: 2, y: 3, width: 5, height: 5 }).unwrap();
        assert_eq!(inner.get(0, 0), image.get(6, 7));
        assert!(outer.subview(TileRect { x: 18, y: 0, width: 5, height: 5 }).is_err());
    }

    #[test]
    fn out_of_bounds_rects_are_rejected() {
        let image = synth::flat(16, 16, 8, 1);
        for rect in [
            TileRect { x: 0, y: 0, width: 17, height: 4 },
            TileRect { x: 12, y: 0, width: 8, height: 8 },
            TileRect { x: 0, y: 9, width: 4, height: 8 },
            TileRect { x: 0, y: 0, width: 0, height: 4 },
        ] {
            assert!(
                matches!(image.view_rect(rect), Err(ImageError::RegionOutOfBounds { .. })),
                "{rect:?} should be rejected"
            );
        }
    }

    #[test]
    fn mutable_views_scatter_tiles() {
        let source = synth::mr_slice(20, 12, 12, 3);
        let mut frame = Image::zeros(50, 40, 12).unwrap();
        let rect = TileRect { x: 25, y: 20, width: 20, height: 12 };
        frame.view_rect_mut(rect).unwrap().copy_from_image(&source).unwrap();
        let back = frame.view_rect(rect).unwrap().to_image().unwrap();
        assert_eq!(back, source);
        // Pixels outside the window are untouched.
        assert_eq!(frame.get(0, 0), 0);
        assert_eq!(frame.get(24, 20), 0);
        // Shape mismatches are rejected.
        let wrong = synth::flat(3, 3, 12, 0);
        assert!(matches!(
            frame.view_rect_mut(rect).unwrap().copy_from_image(&wrong),
            Err(ImageError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn view_from_raw_validates_geometry() {
        let buf = vec![0i32; 10];
        assert!(ImageView::from_raw(&buf, 5, 2, 5, 8).is_ok());
        assert!(ImageView::from_raw(&buf, 5, 2, 6, 8).is_err(), "buffer too short");
        assert!(ImageView::from_raw(&buf, 6, 1, 5, 8).is_err(), "stride below width");
        assert!(ImageView::from_raw(&buf, 0, 1, 5, 8).is_err(), "zero width");
        assert!(ImageView::from_raw(&buf, 1, 0, 5, 8).is_err(), "zero height");
        assert!(ImageView::from_raw(&buf, usize::MAX, 2, usize::MAX, 8).is_err(), "overflow");
        let mut buf = vec![0i32; 10];
        assert!(ImageViewMut::from_raw(&mut buf, 5, 2, 5, 8).is_ok());
        assert!(ImageViewMut::from_raw(&mut buf, 5, 3, 5, 8).is_err());
    }

    #[test]
    fn grid_covers_every_pixel_exactly_once() {
        for (w, h, tw, th) in
            [(64, 64, 16, 16), (70, 50, 32, 32), (1, 1, 8, 8), (37, 53, 8, 16), (16, 16, 100, 100)]
        {
            let grid = TileGrid::new(w, h, tw, th).unwrap();
            let mut hits = vec![0u8; w * h];
            for rect in grid.rects() {
                assert!(!rect.is_empty());
                assert!(rect.right() <= w && rect.bottom() <= h);
                for y in rect.y..rect.bottom() {
                    for x in rect.x..rect.right() {
                        hits[y * w + x] += 1;
                    }
                }
            }
            assert!(hits.iter().all(|&c| c == 1), "{w}x{h} in {tw}x{th} tiles");
        }
    }

    #[test]
    fn grid_geometry_accessors() {
        let grid = TileGrid::new(100, 60, 32, 32).unwrap();
        assert_eq!(grid.image_width(), 100);
        assert_eq!(grid.image_height(), 60);
        assert_eq!(grid.tile_width(), 32);
        assert_eq!(grid.tile_height(), 32);
        assert_eq!(grid.tiles_x(), 4);
        assert_eq!(grid.tiles_y(), 2);
        assert_eq!(grid.tile_count(), 8);
        assert!(!grid.is_single());
        assert_eq!(grid.rect(0), TileRect { x: 0, y: 0, width: 32, height: 32 });
        assert_eq!(grid.rect_at(3, 1), TileRect { x: 96, y: 32, width: 4, height: 28 });
        assert_eq!(grid.rect(7), grid.rect_at(3, 1));

        let single = TileGrid::single(512, 512).unwrap();
        assert!(single.is_single());
        assert_eq!(single.rect(0).pixel_count(), 512 * 512);
        // Oversized tile requests clip to the image and become single grids.
        let clipped = TileGrid::new(8, 8, usize::MAX, usize::MAX).unwrap();
        assert!(clipped.is_single());
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert!(TileGrid::new(0, 8, 4, 4).is_err());
        assert!(TileGrid::new(8, 0, 4, 4).is_err());
        assert!(TileGrid::new(8, 8, 0, 4).is_err());
        assert!(TileGrid::new(8, 8, 4, 0).is_err());
    }

    #[test]
    fn tile_rect_helpers() {
        let rect = TileRect { x: 3, y: 4, width: 5, height: 6 };
        assert_eq!(rect.pixel_count(), 30);
        assert_eq!(rect.right(), 8);
        assert_eq!(rect.bottom(), 10);
        assert!(!rect.is_empty());
        assert!(TileRect { x: 0, y: 0, width: 0, height: 3 }.is_empty());
    }
}
