//! Portable graymap (PGM, binary `P5`) reading and writing.
//!
//! PGM is the simplest interchange format that supports the 12–16 bit sample
//! depths used by medical modalities, so it is what the examples read and
//! write when users want to run the pipeline on their own data.

use crate::{Image, ImageError};
use std::io::{Read, Write};
use std::path::Path;

/// Writes `image` as a binary (`P5`) PGM stream.
///
/// Samples wider than 8 bits are written big-endian, as the Netpbm
/// specification requires.
///
/// # Errors
///
/// Returns an error if writing to `writer` fails.
pub fn write_pgm<W: Write>(image: &Image, mut writer: W) -> Result<(), ImageError> {
    let max = image.max_sample();
    writeln!(writer, "P5")?;
    writeln!(writer, "# written by lwc-image")?;
    writeln!(writer, "{} {}", image.width(), image.height())?;
    writeln!(writer, "{max}")?;
    if max < 256 {
        let bytes: Vec<u8> = image.samples().iter().map(|&v| v as u8).collect();
        writer.write_all(&bytes)?;
    } else {
        let mut bytes = Vec::with_capacity(image.pixel_count() * 2);
        for &v in image.samples() {
            bytes.extend_from_slice(&(v as u16).to_be_bytes());
        }
        writer.write_all(&bytes)?;
    }
    Ok(())
}

/// Reads a binary (`P5`) PGM stream.
///
/// # Errors
///
/// Returns [`ImageError::MalformedPgm`] for syntax problems and
/// [`ImageError::Io`] for I/O failures.
pub fn read_pgm<R: Read>(mut reader: R) -> Result<Image, ImageError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    let mut pos = 0usize;

    let mut next_token = |data: &[u8]| -> Result<String, ImageError> {
        // Skip whitespace and comments.
        loop {
            while pos < data.len() && data[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < data.len() && data[pos] == b'#' {
                while pos < data.len() && data[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(ImageError::MalformedPgm("unexpected end of header".to_owned()));
        }
        Ok(String::from_utf8_lossy(&data[start..pos]).into_owned())
    };

    let magic = next_token(&data)?;
    if magic != "P5" {
        return Err(ImageError::MalformedPgm(format!("unsupported magic {magic:?}")));
    }
    let width: usize =
        next_token(&data)?.parse().map_err(|_| ImageError::MalformedPgm("bad width".to_owned()))?;
    let height: usize = next_token(&data)?
        .parse()
        .map_err(|_| ImageError::MalformedPgm("bad height".to_owned()))?;
    let maxval: u32 = next_token(&data)?
        .parse()
        .map_err(|_| ImageError::MalformedPgm("bad maxval".to_owned()))?;
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::MalformedPgm(format!("unsupported maxval {maxval}")));
    }
    // Exactly one whitespace byte separates the header from the raster.
    pos += 1;

    let bit_depth = 32 - maxval.leading_zeros();
    let pixels = width
        .checked_mul(height)
        .ok_or_else(|| ImageError::MalformedPgm("image too large".to_owned()))?;
    // Samples above 255 are two big-endian bytes each (the Netpbm "plain
    // 16-bit" convention medical exporters use); the length math is checked
    // so an adversarial header cannot overflow the raster bounds.
    let raster_bytes = if maxval < 256 { Some(pixels) } else { pixels.checked_mul(2) }
        .ok_or_else(|| ImageError::MalformedPgm("image too large".to_owned()))?;
    let raster = pos
        .checked_add(raster_bytes)
        .and_then(|end| data.get(pos..end))
        .ok_or_else(|| ImageError::MalformedPgm("truncated raster".to_owned()))?;
    let samples = if maxval < 256 {
        raster.iter().map(|&b| i32::from(b)).collect()
    } else {
        raster.chunks_exact(2).map(|c| i32::from(u16::from_be_bytes([c[0], c[1]]))).collect()
    };
    Image::from_samples(width, height, bit_depth, samples)
}

/// Convenience wrapper: writes `image` to a file at `path`.
///
/// # Errors
///
/// See [`write_pgm`].
pub fn save<P: AsRef<Path>>(image: &Image, path: P) -> Result<(), ImageError> {
    let file = std::fs::File::create(path)?;
    write_pgm(image, std::io::BufWriter::new(file))
}

/// Convenience wrapper: reads an image from a file at `path`.
///
/// # Errors
///
/// See [`read_pgm`].
pub fn load<P: AsRef<Path>>(path: P) -> Result<Image, ImageError> {
    let file = std::fs::File::open(path)?;
    read_pgm(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn roundtrip_8_bit() {
        let img = synth::random_image(17, 9, 8, 1);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn roundtrip_12_bit() {
        let img = synth::ct_phantom(32, 24, 12, 2);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(img.samples(), back.samples());
        assert_eq!(back.bit_depth(), 12);
    }

    #[test]
    fn roundtrip_16_bit() {
        // Full 16-bit medical depth: maxval 65535, two big-endian bytes per
        // sample, including values above 32767 (no sign confusion).
        let img = Image::from_samples(3, 2, 16, vec![0, 255, 256, 32767, 40000, 65535]).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..20]);
        assert!(text.contains("P5"), "header: {text}");
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(img, back);
        assert_eq!(back.bit_depth(), 16);
        assert_eq!(back.max_sample(), 65535);
    }

    #[test]
    fn sixteen_bit_raster_is_big_endian() {
        let img = Image::from_samples(2, 1, 16, vec![0x1234, 0xFEDC]).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        assert_eq!(&buf[buf.len() - 4..], &[0x12, 0x34, 0xFE, 0xDC]);
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back.samples(), &[0x1234, 0xFEDC]);
    }

    #[test]
    fn wide_maxvals_map_to_the_smallest_covering_depth() {
        // A 12-bit exporter writes maxval 4095; a nonstandard one may write
        // e.g. 1000 — both must parse with the smallest covering bit depth.
        for (maxval, depth) in [(4095u32, 12u32), (1000, 10), (256, 9), (65535, 16)] {
            let mut stream = format!("P5\n2 1\n{maxval}\n").into_bytes();
            stream.extend_from_slice(&[0x00, 0x01, 0x00, 0x02]);
            let img = read_pgm(stream.as_slice()).unwrap();
            assert_eq!(img.bit_depth(), depth, "maxval {maxval}");
            assert_eq!(img.samples(), &[1, 2]);
        }
    }

    #[test]
    fn sixteen_bit_truncation_and_oversized_maxvals_are_rejected() {
        // One byte short of the two-byte raster.
        let mut stream = b"P5\n2 1\n65535\n".to_vec();
        stream.extend_from_slice(&[0, 1, 0]);
        assert!(read_pgm(stream.as_slice()).is_err());
        // maxval beyond 16 bits is not a valid PGM.
        assert!(read_pgm(&b"P5\n1 1\n70000\n\x00\x00\x00"[..]).is_err());
        // Absurd dimensions must error, not overflow the bounds math —
        // including a pixel count that only overflows once doubled for the
        // two-byte raster.
        let huge = format!("P5\n{} {}\n65535\n", usize::MAX, 2);
        assert!(read_pgm(huge.as_bytes()).is_err());
        let half = format!("P5\n{} 1\n65535\n", usize::MAX / 2 + 1);
        assert!(read_pgm(half.as_bytes()).is_err());
    }

    #[test]
    fn sixteen_bit_file_roundtrip() {
        let dir = std::env::temp_dir().join("lwc_image_pgm16_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slice16.pgm");
        let img = synth::random_image(32, 20, 16, 9);
        save(&img, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(img, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_comments_are_skipped() {
        let img = synth::flat(2, 2, 8, 9);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back.get(0, 0), 9);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        assert!(read_pgm(&b"P2\n2 2\n255\n0 0 0 0"[..]).is_err(), "ascii pgm unsupported");
        assert!(read_pgm(&b"P5\n2 2\n255\n\x00"[..]).is_err(), "truncated raster");
        assert!(read_pgm(&b"P5\nx 2\n255\n"[..]).is_err(), "bad width");
        assert!(read_pgm(&b""[..]).is_err(), "empty stream");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lwc_image_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("phantom.pgm");
        let img = synth::mr_slice(16, 16, 12, 3);
        save(&img, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(img.samples(), back.samples());
        std::fs::remove_file(&path).ok();
    }
}
