//! # lwc-image — image containers, synthetic medical phantoms and statistics
//!
//! The paper targets the lossless compression of medical images (X-ray CT,
//! 512×512, 12-bit resolution) and validates its hardware on *"data taken
//! from random images"*. Real radiological data cannot ship with an
//! open-source reproduction, so this crate supplies:
//!
//! * [`Image`] — a simple row-major integer raster with an explicit bit
//!   depth, used as the exchange type across the whole workspace,
//! * [`ImageView`] / [`ImageViewMut`] — borrowed strided windows into an
//!   image, and [`TileGrid`] / [`TileRect`] — the tile partition used by the
//!   tile-parallel compression engine (`lwc-pipeline`),
//! * synthetic workloads in [`synth`]: uniformly random images (the paper's
//!   own validation input), an elliptical CT-like phantom, an MR-like
//!   smooth-plus-texture field, and step/gradient patterns for edge cases,
//! * [`pgm`] — portable graymap I/O so users can run the pipeline on their
//!   own data,
//! * [`dicom`] — a minimal, dependency-free reader (and fixture writer) for
//!   uncompressed little-endian DICOM Part 10 objects, so real CT/MR exports
//!   feed the corpus harness directly,
//! * [`stats`] — entropy, MSE/PSNR and exactness checks used by the lossless
//!   verification and by the compression examples.
//!
//! ```
//! use lwc_image::{synth, stats};
//!
//! let img = synth::random_image(64, 64, 12, 7);
//! assert_eq!(img.width(), 64);
//! assert!(stats::max_abs_diff(&img, &img).unwrap() == 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dicom;
mod error;
mod image;
pub mod pgm;
mod stack;
pub mod stats;
pub mod synth;
mod view;

pub use dicom::DicomImage;
pub use error::ImageError;
pub use image::Image;
pub use stack::{BrickGrid, BrickRect, ImageStack, VolumeView};
pub use view::{ImageView, ImageViewMut, TileGrid, TileRect};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Image>();
        assert_send_sync::<ImageError>();
    }
}
