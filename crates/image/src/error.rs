//! Error type for image construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors produced by image construction, access and PGM I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImageError {
    /// Width or height is zero, or the sample buffer length does not match
    /// `width * height`.
    InvalidDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
        /// Length of the provided sample buffer.
        samples: usize,
    },
    /// The requested bit depth is outside the supported 1–16 range.
    InvalidBitDepth(u32),
    /// A sample value does not fit the declared bit depth.
    SampleOutOfRange {
        /// The offending value.
        value: i32,
        /// Declared bit depth.
        bit_depth: u32,
    },
    /// Two images that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the first image (width, height).
        left: (usize, usize),
        /// Shape of the second image (width, height).
        right: (usize, usize),
    },
    /// A requested view rectangle does not fit inside the image.
    RegionOutOfBounds {
        /// Requested rectangle as (x, y, width, height).
        rect: (usize, usize, usize, usize),
        /// Shape of the image (width, height).
        image: (usize, usize),
    },
    /// A PGM stream could not be parsed.
    MalformedPgm(String),
    /// A DICOM stream is structurally invalid (truncated element header,
    /// forged length, inconsistent pixel module).
    MalformedDicom(String),
    /// A DICOM stream is well-formed but uses a feature outside the
    /// supported subset (compressed transfer syntaxes, sequences with
    /// undefined length, exotic photometric interpretations).
    UnsupportedDicom(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::InvalidDimensions { width, height, samples } => {
                write!(f, "invalid image dimensions {width}x{height} for {samples} samples")
            }
            ImageError::InvalidBitDepth(b) => write!(f, "unsupported bit depth {b}"),
            ImageError::SampleOutOfRange { value, bit_depth } => {
                write!(f, "sample {value} does not fit {bit_depth}-bit range")
            }
            ImageError::ShapeMismatch { left, right } => {
                write!(f, "image shapes differ: {}x{} vs {}x{}", left.0, left.1, right.0, right.1)
            }
            ImageError::RegionOutOfBounds { rect, image } => {
                write!(
                    f,
                    "region {}x{} at ({},{}) does not fit a {}x{} image",
                    rect.2, rect.3, rect.0, rect.1, image.0, image.1
                )
            }
            ImageError::MalformedPgm(msg) => write!(f, "malformed pgm stream: {msg}"),
            ImageError::MalformedDicom(msg) => write!(f, "malformed dicom stream: {msg}"),
            ImageError::UnsupportedDicom(msg) => write!(f, "unsupported dicom feature: {msg}"),
            ImageError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for ImageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ImageError::InvalidDimensions { width: 0, height: 4, samples: 0 };
        assert!(e.to_string().contains("0x4"));
        let e = ImageError::SampleOutOfRange { value: 5000, bit_depth: 12 };
        assert!(e.to_string().contains("5000"));
        let e = ImageError::ShapeMismatch { left: (4, 4), right: (8, 8) };
        assert!(e.to_string().contains("4x4"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e = ImageError::from(io);
        assert!(e.to_string().contains("missing"));
        assert!(Error::source(&e).is_some());
    }
}
