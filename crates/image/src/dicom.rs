//! Minimal, dependency-free DICOM ingest for uncompressed little-endian
//! transfer syntaxes.
//!
//! Real studies arrive as DICOM Part 10 files, not PGM, so the corpus
//! harness needs just enough of the standard to pull pixel data out of the
//! common uncompressed encodings:
//!
//! * **Explicit VR Little Endian** (`1.2.840.10008.1.2.1`) and
//!   **Implicit VR Little Endian** (`1.2.840.10008.1.2`) — every other
//!   transfer syntax (all the compressed ones, big endian) is a typed
//!   [`ImageError::UnsupportedDicom`],
//! * single-frame and multi-frame monochrome pixel data, 8 or 16 bits
//!   allocated, 1–16 bits stored,
//! * signed pixel data (`PixelRepresentation == 1`): samples are
//!   sign-extended from *Bits Stored* and shifted by `+2^(bits_stored-1)`
//!   into the unsigned range [`Image`] requires; [`DicomImage::signed`]
//!   records the shift so callers can undo it,
//! * *Rescale Intercept*/*Slope* (`0028,1052`/`0028,1053`) are parsed and
//!   surfaced (they map stored values to modality units, e.g. Hounsfield),
//!   never applied — the codec compresses stored values.
//!
//! The parser follows the same discipline as the PGM reader: every length is
//! validated against the remaining stream **before** any allocation is sized
//! from it (decompression-bomb guard — the pixel buffer is only allocated
//! once a pixel-data slice of exactly the implied byte length is in hand),
//! structural problems surface as [`ImageError::MalformedDicom`], and
//! out-of-subset features as [`ImageError::UnsupportedDicom`] — never a
//! panic.
//!
//! [`encode`] is the matching fixture writer: it emits a well-formed Part 10
//! stream in either supported syntax, used by the corpus smoke tests and by
//! `reproduce corpus` to build an in-tree test corpus.

use crate::{Image, ImageError, ImageStack};
use std::io::{Read, Write};
use std::path::Path;

/// Transfer syntax UID for Explicit VR Little Endian.
pub const EXPLICIT_VR_LE: &str = "1.2.840.10008.1.2.1";

/// Transfer syntax UID for Implicit VR Little Endian.
pub const IMPLICIT_VR_LE: &str = "1.2.840.10008.1.2";

/// Byte length of the Part 10 preamble preceding the `DICM` magic.
const PREAMBLE_LEN: usize = 128;

/// A decoded DICOM object: the pixel data as an [`ImageStack`] (depth 1 for
/// single-frame objects) plus the attributes a codec or metrics harness
/// needs to interpret the samples.
#[derive(Debug, Clone, PartialEq)]
pub struct DicomImage {
    /// The frames, slice-major, at `bits_stored` bit depth. Signed source
    /// samples are shifted by `+2^(bits_stored-1)` into the unsigned range.
    pub stack: ImageStack,
    /// *Bits Stored* (0028,0101): the nominal sample depth.
    pub bits_stored: u32,
    /// `true` if the source declared two's-complement pixels
    /// (*Pixel Representation* (0028,0103) = 1) and the samples were shifted.
    pub signed: bool,
    /// *Rescale Intercept* (0028,1052), 0.0 when absent.
    pub rescale_intercept: f64,
    /// *Rescale Slope* (0028,1053), 1.0 when absent.
    pub rescale_slope: f64,
    /// The transfer syntax UID the object was encoded with.
    pub transfer_syntax: String,
}

impl DicomImage {
    /// The first (often only) frame as an [`Image`].
    ///
    /// # Errors
    ///
    /// Cannot fail for a parsed object (the stack always has a slice 0).
    pub fn frame0(&self) -> Result<Image, ImageError> {
        self.stack.slice_image(0)
    }
}

/// Attribute values the element walk collects before pixel assembly.
#[derive(Default)]
struct Attributes {
    rows: Option<u16>,
    columns: Option<u16>,
    frames: Option<usize>,
    bits_allocated: Option<u16>,
    bits_stored: Option<u16>,
    pixel_representation: Option<u16>,
    rescale_intercept: Option<f64>,
    rescale_slope: Option<f64>,
    pixel_data: Option<std::ops::Range<usize>>,
}

fn malformed(msg: impl Into<String>) -> ImageError {
    ImageError::MalformedDicom(msg.into())
}

fn unsupported(msg: impl Into<String>) -> ImageError {
    ImageError::UnsupportedDicom(msg.into())
}

/// Bounds-checked little-endian cursor over the raw stream.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ImageError> {
        if self.remaining() < n {
            return Err(malformed(format!(
                "truncated stream: {what} needs {n} bytes but {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16(&mut self, what: &str) -> Result<u16, ImageError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ImageError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// One parsed data element header plus the location of its value field.
struct Element {
    group: u16,
    element: u16,
    value: std::ops::Range<usize>,
}

/// VRs that use the 12-byte explicit header (2 reserved bytes + 32-bit
/// length) instead of the short 8-byte form.
fn is_long_vr(vr: &[u8]) -> bool {
    matches!(vr, b"OB" | b"OW" | b"OF" | b"SQ" | b"UT" | b"UN")
}

/// Reads one data element in the given encoding. `explicit` selects the
/// explicit-VR header layout. Undefined lengths (`0xFFFF_FFFF`, used by
/// encapsulated pixel data and undelimited sequences) are outside the
/// supported subset.
fn read_element(cursor: &mut Cursor<'_>, explicit: bool) -> Result<Element, ImageError> {
    let group = cursor.u16("element tag group")?;
    let element = cursor.u16("element tag number")?;
    let length = if explicit {
        let vr: [u8; 2] = cursor.take(2, "element VR")?.try_into().expect("2-byte VR");
        if !vr.iter().all(u8::is_ascii_uppercase) {
            return Err(malformed(format!(
                "implausible VR {:02X}{:02X} for element ({group:04X},{element:04X})",
                vr[0], vr[1]
            )));
        }
        if is_long_vr(&vr) {
            cursor.take(2, "long-VR reserved bytes")?;
            cursor.u32("element length")?
        } else {
            u32::from(cursor.u16("element length")?)
        }
    } else {
        cursor.u32("element length")?
    };
    if length == 0xFFFF_FFFF {
        return Err(unsupported(format!(
            "element ({group:04X},{element:04X}) has undefined length (encapsulated or \
             undelimited data)"
        )));
    }
    let length = length as usize;
    if cursor.remaining() < length {
        return Err(malformed(format!(
            "element ({group:04X},{element:04X}) claims {length} bytes but {} remain",
            cursor.remaining()
        )));
    }
    let start = cursor.pos;
    cursor.pos += length;
    Ok(Element { group, element, value: start..start + length })
}

/// Parses a decimal string (`IS`/`DS`) value field, tolerating the trailing
/// space/NUL padding DICOM uses to even out lengths.
fn decimal_text(bytes: &[u8]) -> Option<&str> {
    std::str::from_utf8(bytes).ok().map(|s| s.trim_matches(['\0', ' ']))
}

/// Parses a Part 10 DICOM stream into a [`DicomImage`].
///
/// # Errors
///
/// * [`ImageError::MalformedDicom`] for structural problems: missing `DICM`
///   magic, truncated element headers, lengths past the end of the stream,
///   a pixel module whose geometry and pixel-data size disagree,
/// * [`ImageError::UnsupportedDicom`] for well-formed streams outside the
///   subset: any transfer syntax other than explicit/implicit VR little
///   endian, undefined-length elements, bits allocated other than 8/16.
pub fn parse(bytes: &[u8]) -> Result<DicomImage, ImageError> {
    if bytes.len() < PREAMBLE_LEN + 4 || &bytes[PREAMBLE_LEN..PREAMBLE_LEN + 4] != b"DICM" {
        return Err(malformed("missing DICM magic after the 128-byte preamble"));
    }
    let mut cursor = Cursor { bytes, pos: PREAMBLE_LEN + 4 };

    // File meta information (group 0002) is always explicit VR little
    // endian, whatever the dataset uses. Walk it until the group changes.
    let mut transfer_syntax: Option<String> = None;
    loop {
        if cursor.remaining() == 0 {
            return Err(malformed("stream ends inside the file meta group"));
        }
        let peek = &bytes[cursor.pos..];
        if peek.len() < 2 || u16::from_le_bytes([peek[0], peek[1]]) != 0x0002 {
            break;
        }
        let element = read_element(&mut cursor, true)?;
        if (element.group, element.element) == (0x0002, 0x0010) {
            let uid = decimal_text(&bytes[element.value])
                .ok_or_else(|| malformed("transfer syntax UID is not ASCII"))?;
            transfer_syntax = Some(uid.to_owned());
        }
    }
    let transfer_syntax =
        transfer_syntax.ok_or_else(|| malformed("file meta group lacks a transfer syntax UID"))?;
    let explicit = match transfer_syntax.as_str() {
        EXPLICIT_VR_LE => true,
        IMPLICIT_VR_LE => false,
        other => {
            return Err(unsupported(format!(
                "transfer syntax {other} (only uncompressed little-endian syntaxes are read)"
            )))
        }
    };

    // Dataset walk: collect the pixel-module attributes, skip everything
    // else by length.
    let mut attrs = Attributes::default();
    while cursor.remaining() > 0 {
        let element = read_element(&mut cursor, explicit)?;
        let value = &bytes[element.value.clone()];
        let us = || -> Result<u16, ImageError> {
            let b: [u8; 2] = value.try_into().map_err(|_| {
                malformed(format!(
                    "element ({:04X},{:04X}) holds {} bytes, expected a 2-byte US",
                    element.group,
                    element.element,
                    value.len()
                ))
            })?;
            Ok(u16::from_le_bytes(b))
        };
        match (element.group, element.element) {
            (0x0028, 0x0008) => {
                let text = decimal_text(value)
                    .ok_or_else(|| malformed("number of frames is not ASCII"))?;
                let frames: usize = text
                    .trim()
                    .parse()
                    .map_err(|_| malformed(format!("implausible number of frames {text:?}")))?;
                attrs.frames = Some(frames);
            }
            (0x0028, 0x0010) => attrs.rows = Some(us()?),
            (0x0028, 0x0011) => attrs.columns = Some(us()?),
            (0x0028, 0x0100) => attrs.bits_allocated = Some(us()?),
            (0x0028, 0x0101) => attrs.bits_stored = Some(us()?),
            (0x0028, 0x0103) => attrs.pixel_representation = Some(us()?),
            (0x0028, 0x1052) => {
                let text = decimal_text(value)
                    .ok_or_else(|| malformed("rescale intercept is not ASCII"))?;
                attrs.rescale_intercept =
                    Some(text.trim().parse().map_err(|_| {
                        malformed(format!("implausible rescale intercept {text:?}"))
                    })?);
            }
            (0x0028, 0x1053) => {
                let text =
                    decimal_text(value).ok_or_else(|| malformed("rescale slope is not ASCII"))?;
                attrs.rescale_slope = Some(
                    text.trim()
                        .parse()
                        .map_err(|_| malformed(format!("implausible rescale slope {text:?}")))?,
                );
            }
            (0x7FE0, 0x0010) => attrs.pixel_data = Some(element.value),
            _ => {}
        }
    }
    assemble(bytes, &attrs, transfer_syntax)
}

/// Validates the collected pixel module and decodes the pixel data.
fn assemble(
    bytes: &[u8],
    attrs: &Attributes,
    transfer_syntax: String,
) -> Result<DicomImage, ImageError> {
    let require = |field: Option<u16>, name: &str| {
        field.ok_or_else(|| malformed(format!("pixel module lacks {name}")))
    };
    let rows = usize::from(require(attrs.rows, "Rows (0028,0010)")?);
    let columns = usize::from(require(attrs.columns, "Columns (0028,0011)")?);
    let bits_allocated = u32::from(require(attrs.bits_allocated, "Bits Allocated (0028,0100)")?);
    let bits_stored = attrs.bits_stored.map_or(bits_allocated, u32::from).min(u32::from(u16::MAX));
    let signed = attrs.pixel_representation.unwrap_or(0) == 1;
    let frames = attrs.frames.unwrap_or(1);
    let pixel_range = attrs
        .pixel_data
        .clone()
        .ok_or_else(|| malformed("dataset lacks Pixel Data (7FE0,0010)"))?;

    if rows == 0 || columns == 0 || frames == 0 {
        return Err(malformed(format!("zero-sized pixel matrix {columns}x{rows}x{frames}")));
    }
    if bits_allocated != 8 && bits_allocated != 16 {
        return Err(unsupported(format!(
            "{bits_allocated} bits allocated (only 8 and 16 are read)"
        )));
    }
    if bits_stored == 0 || bits_stored > bits_allocated || bits_stored > 16 {
        return Err(malformed(format!(
            "{bits_stored} bits stored does not fit {bits_allocated} bits allocated"
        )));
    }
    let bytes_per_sample = (bits_allocated / 8) as usize;
    let expected = rows
        .checked_mul(columns)
        .and_then(|p| p.checked_mul(frames))
        .and_then(|p| p.checked_mul(bytes_per_sample))
        .ok_or_else(|| {
            malformed(format!("pixel matrix {columns}x{rows}x{frames} overflows addressing"))
        })?;
    let pixel_bytes = &bytes[pixel_range];
    // DICOM pads value fields to even length; tolerate exactly one pad byte.
    if pixel_bytes.len() != expected && !(expected % 2 == 1 && pixel_bytes.len() == expected + 1) {
        return Err(malformed(format!(
            "pixel data holds {} bytes but {columns}x{rows}x{frames} at {bits_allocated} bits \
             allocated needs {expected}",
            pixel_bytes.len()
        )));
    }
    let pixel_bytes = &pixel_bytes[..expected];

    // Only now — with a pixel slice of exactly the implied size in hand — is
    // the sample buffer allocated.
    let offset = if signed { 1i32 << (bits_stored - 1) } else { 0 };
    let mask = ((1u32 << bits_stored) - 1) as i32;
    let widen = |raw: u32| -> i32 {
        let stored = (raw as i32) & mask;
        if signed && stored >= 1i32 << (bits_stored - 1) {
            stored - (1i32 << bits_stored) + offset
        } else {
            stored + offset
        }
    };
    let samples: Vec<i32> = if bytes_per_sample == 1 {
        pixel_bytes.iter().map(|&b| widen(u32::from(b))).collect()
    } else {
        pixel_bytes
            .chunks_exact(2)
            .map(|pair| widen(u32::from(u16::from_le_bytes([pair[0], pair[1]]))))
            .collect()
    };
    let stack = ImageStack::from_samples(columns, rows, frames, bits_stored, samples)?;
    Ok(DicomImage {
        stack,
        bits_stored,
        signed,
        rescale_intercept: attrs.rescale_intercept.unwrap_or(0.0),
        rescale_slope: attrs.rescale_slope.unwrap_or(1.0),
        transfer_syntax,
    })
}

/// Reads and parses a DICOM stream from `reader`.
///
/// # Errors
///
/// See [`parse`]; additionally [`ImageError::Io`] for read failures.
pub fn read_dicom<R: Read>(mut reader: R) -> Result<DicomImage, ImageError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse(&bytes)
}

/// Loads a DICOM file from `path`.
///
/// # Errors
///
/// See [`read_dicom`].
pub fn load<P: AsRef<Path>>(path: P) -> Result<DicomImage, ImageError> {
    read_dicom(std::fs::File::open(path)?)
}

/// `true` if `bytes` carries the Part 10 `DICM` magic — the cheap router
/// between DICOM and PGM inputs in the corpus walker.
#[must_use]
pub fn is_dicom(bytes: &[u8]) -> bool {
    bytes.len() >= PREAMBLE_LEN + 4 && &bytes[PREAMBLE_LEN..PREAMBLE_LEN + 4] == b"DICM"
}

/// Appends one data element in the chosen encoding, padding odd-length
/// values with a NUL byte as Part 5 requires.
fn put_element(out: &mut Vec<u8>, explicit: bool, tag: (u16, u16), vr: &[u8; 2], value: &[u8]) {
    out.extend_from_slice(&tag.0.to_le_bytes());
    out.extend_from_slice(&tag.1.to_le_bytes());
    let padded = value.len() + value.len() % 2;
    if explicit {
        out.extend_from_slice(vr);
        if is_long_vr(vr) {
            out.extend_from_slice(&[0, 0]);
            out.extend_from_slice(&(padded as u32).to_le_bytes());
        } else {
            out.extend_from_slice(&(padded as u16).to_le_bytes());
        }
    } else {
        out.extend_from_slice(&(padded as u32).to_le_bytes());
    }
    out.extend_from_slice(value);
    if value.len() % 2 == 1 {
        out.push(0);
    }
}

/// Serializes `stack` as a minimal monochrome Part 10 stream — the fixture
/// writer behind the in-tree corpus and the ingest tests. `explicit` selects
/// the transfer syntax; with `signed` the samples are shifted down by
/// `2^(bits_stored-1)` and stored two's complement, exactly inverting what
/// [`parse`] does on ingest.
///
/// # Errors
///
/// Returns [`ImageError::InvalidDimensions`] if a stack dimension exceeds
/// the 16-bit Rows/Columns fields.
pub fn encode(stack: &ImageStack, explicit: bool, signed: bool) -> Result<Vec<u8>, ImageError> {
    if stack.width() > usize::from(u16::MAX) || stack.height() > usize::from(u16::MAX) {
        return Err(ImageError::InvalidDimensions {
            width: stack.width(),
            height: stack.height(),
            samples: stack.voxel_count(),
        });
    }
    let syntax = if explicit { EXPLICIT_VR_LE } else { IMPLICIT_VR_LE };
    let bits_stored = stack.bit_depth();
    let bits_allocated: u16 = if bits_stored <= 8 { 8 } else { 16 };

    let mut out = vec![0u8; PREAMBLE_LEN];
    out.extend_from_slice(b"DICM");
    // File meta group (always explicit VR): group length, then the transfer
    // syntax UID the dataset uses.
    let mut meta = Vec::new();
    put_element(&mut meta, true, (0x0002, 0x0010), b"UI", syntax.as_bytes());
    put_element(&mut out, true, (0x0002, 0x0000), b"UL", &(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(&meta);

    let us = |v: u16| v.to_le_bytes();
    if stack.depth() > 1 {
        let frames = stack.depth().to_string();
        put_element(&mut out, explicit, (0x0028, 0x0008), b"IS", frames.as_bytes());
    }
    put_element(&mut out, explicit, (0x0028, 0x0010), b"US", &us(stack.height() as u16));
    put_element(&mut out, explicit, (0x0028, 0x0011), b"US", &us(stack.width() as u16));
    put_element(&mut out, explicit, (0x0028, 0x0100), b"US", &us(bits_allocated));
    put_element(&mut out, explicit, (0x0028, 0x0101), b"US", &us(bits_stored as u16));
    put_element(&mut out, explicit, (0x0028, 0x0102), b"US", &us(bits_stored as u16 - 1));
    put_element(&mut out, explicit, (0x0028, 0x0103), b"US", &us(u16::from(signed)));

    let offset = if signed { 1i32 << (bits_stored - 1) } else { 0 };
    let mask = if bits_allocated == 8 { 0xFFu32 } else { 0xFFFFu32 };
    let mut pixels = Vec::with_capacity(stack.voxel_count() * usize::from(bits_allocated / 8));
    for &sample in stack.samples() {
        let stored = ((sample - offset) as u32) & mask;
        if bits_allocated == 8 {
            pixels.push(stored as u8);
        } else {
            pixels.extend_from_slice(&(stored as u16).to_le_bytes());
        }
    }
    put_element(&mut out, explicit, (0x7FE0, 0x0010), b"OW", &pixels);
    Ok(out)
}

/// Writes `stack` as a DICOM file at `path`; see [`encode`].
///
/// # Errors
///
/// See [`encode`]; additionally [`ImageError::Io`] for write failures.
pub fn save<P: AsRef<Path>>(
    path: P,
    stack: &ImageStack,
    explicit: bool,
    signed: bool,
) -> Result<(), ImageError> {
    let bytes = encode(stack, explicit, signed)?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn sample_stack(depth: usize) -> ImageStack {
        let slices: Vec<Image> =
            (0..depth).map(|z| synth::ct_phantom(40, 30, 12, z as u64)).collect();
        ImageStack::from_slices(&slices).unwrap()
    }

    #[test]
    fn explicit_and_implicit_roundtrips_are_exact() {
        let stack = sample_stack(1);
        for explicit in [true, false] {
            let bytes = encode(&stack, explicit, false).unwrap();
            assert!(is_dicom(&bytes));
            let parsed = parse(&bytes).unwrap();
            assert_eq!(parsed.stack, stack, "explicit={explicit}");
            assert_eq!(parsed.bits_stored, 12);
            assert!(!parsed.signed);
            assert_eq!(
                parsed.transfer_syntax,
                if explicit { EXPLICIT_VR_LE } else { IMPLICIT_VR_LE }
            );
        }
    }

    #[test]
    fn multi_frame_objects_become_stacks() {
        let stack = sample_stack(5);
        let bytes = encode(&stack, true, false).unwrap();
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.stack.depth(), 5);
        assert_eq!(parsed.stack, stack);
    }

    #[test]
    fn signed_pixels_shift_into_the_unsigned_range_and_back() {
        let stack = sample_stack(1);
        for explicit in [true, false] {
            let bytes = encode(&stack, explicit, true).unwrap();
            let parsed = parse(&bytes).unwrap();
            assert!(parsed.signed);
            // encode shifts down, parse shifts back: samples survive exactly.
            assert_eq!(parsed.stack, stack, "explicit={explicit}");
        }
    }

    #[test]
    fn eight_bit_objects_roundtrip() {
        let image = synth::random_image(17, 9, 8, 3);
        let stack = ImageStack::from_slices(std::slice::from_ref(&image)).unwrap();
        let bytes = encode(&stack, true, false).unwrap();
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.stack, stack);
        // 17x9 = 153 bytes of pixels: odd, so the value field carries a pad
        // byte the parser must tolerate.
        let back = parsed.frame0().unwrap();
        assert_eq!(back.samples(), image.samples());
    }

    #[test]
    fn rescale_attributes_are_surfaced_not_applied() {
        let stack = sample_stack(1);
        let mut bytes = encode(&stack, true, false).unwrap();
        // Splice a rescale intercept/slope pair in front of the pixel data
        // element (tags stay ascending: 0028,1052 < 7FE0,0010).
        let pixel_tag = [0xE0u8, 0x7F, 0x10, 0x00];
        let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == pixel_tag).unwrap();
        let mut extra = Vec::new();
        put_element(&mut extra, true, (0x0028, 0x1052), b"DS", b"-1024");
        put_element(&mut extra, true, (0x0028, 0x1053), b"DS", b"1.5");
        bytes.splice(at..at, extra);
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.rescale_intercept, -1024.0);
        assert_eq!(parsed.rescale_slope, 1.5);
        assert_eq!(parsed.stack, stack, "stored values are untouched");
    }

    #[test]
    fn non_dicom_streams_are_rejected_cheaply() {
        assert!(!is_dicom(&[]));
        assert!(!is_dicom(b"P5 2 2 255"));
        assert!(matches!(parse(&[]), Err(ImageError::MalformedDicom(_))));
        let mut no_magic = vec![0u8; 200];
        no_magic[128..132].copy_from_slice(b"DICX");
        assert!(matches!(parse(&no_magic), Err(ImageError::MalformedDicom(_))));
    }

    #[test]
    fn unsupported_transfer_syntaxes_are_typed_errors() {
        let stack = sample_stack(1);
        let mut bytes = encode(&stack, true, false).unwrap();
        // The fixture writes the UID at a known spot; forge a JPEG-LS UID of
        // equal length ("1.2.840.10008.1.2.4.80__" won't fit, so rewrite the
        // element wholesale).
        let uid = EXPLICIT_VR_LE.as_bytes();
        let at = (0..bytes.len() - uid.len()).find(|&i| &bytes[i..i + uid.len()] == uid).unwrap();
        bytes[at..at + uid.len()].copy_from_slice(b"1.2.840.10008.1.2.4"); // same length
        match parse(&bytes) {
            Err(ImageError::UnsupportedDicom(msg)) => {
                assert!(msg.contains("transfer syntax"), "{msg}");
            }
            other => panic!("expected UnsupportedDicom, got {other:?}"),
        }
    }

    #[test]
    fn truncations_at_every_boundary_are_typed_errors() {
        let stack = sample_stack(2);
        let bytes = encode(&stack, true, false).unwrap();
        for len in [0, 64, 131, 132, 140, 160, bytes.len() / 2, bytes.len() - 1] {
            match parse(&bytes[..len.min(bytes.len())]) {
                Err(ImageError::MalformedDicom(_)) => {}
                other => panic!("prefix of {len} bytes: expected MalformedDicom, got {other:?}"),
            }
        }
    }

    #[test]
    fn forged_lengths_and_dimensions_are_rejected_before_allocation() {
        let stack = sample_stack(1);
        let bytes = encode(&stack, true, false).unwrap();
        // Forge the pixel-data element length to claim bytes past the end.
        let pixel_tag = [0xE0u8, 0x7F, 0x10, 0x00];
        let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == pixel_tag).unwrap();
        let mut forged = bytes.clone();
        forged[at + 8..at + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse(&forged), Err(ImageError::UnsupportedDicom(_))), "undefined len");
        let mut forged = bytes.clone();
        forged[at + 8..at + 12].copy_from_slice(&0x7FFF_FFFFu32.to_le_bytes());
        match parse(&forged) {
            Err(ImageError::MalformedDicom(msg)) => assert!(msg.contains("claims"), "{msg}"),
            other => panic!("expected MalformedDicom, got {other:?}"),
        }
        // Forge Rows to zero: geometry must be rejected, not allocated.
        let rows_tag = [0x28u8, 0x00, 0x10, 0x00];
        let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == rows_tag).unwrap();
        let mut forged = bytes.clone();
        forged[at + 8..at + 10].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(parse(&forged), Err(ImageError::MalformedDicom(_))));
        // Forge Rows huge: the geometry/pixel-length consistency check fires.
        let mut forged = bytes;
        forged[at + 8..at + 10].copy_from_slice(&u16::MAX.to_le_bytes());
        match parse(&forged) {
            Err(ImageError::MalformedDicom(msg)) => assert!(msg.contains("pixel"), "{msg}"),
            other => panic!("expected MalformedDicom, got {other:?}"),
        }
    }

    #[test]
    fn missing_pixel_module_attributes_are_named() {
        // A dataset with only the meta group and pixel data: the first
        // missing attribute (Rows) is called out by name.
        let mut bytes = vec![0u8; PREAMBLE_LEN];
        bytes.extend_from_slice(b"DICM");
        let mut meta = Vec::new();
        put_element(&mut meta, true, (0x0002, 0x0010), b"UI", EXPLICIT_VR_LE.as_bytes());
        put_element(&mut bytes, true, (0x0002, 0x0000), b"UL", &(meta.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&meta);
        put_element(&mut bytes, true, (0x7FE0, 0x0010), b"OW", &[0, 0]);
        match parse(&bytes) {
            Err(ImageError::MalformedDicom(msg)) => assert!(msg.contains("Rows"), "{msg}"),
            other => panic!("expected MalformedDicom, got {other:?}"),
        }
    }
}
