//! Volumetric containers: an owned slice stack and the 3-D brick grid.
//!
//! Medical data is mostly CT/MRI *volumes*, not lone slices. An
//! [`ImageStack`] owns `depth` equally shaped slices in one contiguous
//! buffer (slice-major: slice `z` occupies `width * height` consecutive
//! samples); a [`VolumeView`] is the borrowed strided window used by the
//! volumetric codec, handing out per-slice [`ImageView`]s at zero cost; and
//! a [`BrickGrid`] extends [`TileGrid`] with a z axis, partitioning the
//! volume into bricks with ragged right/bottom/back edges — the 3-D analogue
//! of the tile partition the 2-D engines are built on.

use crate::view::check_rect;
use crate::{Image, ImageError, ImageView, ImageViewMut, TileGrid, TileRect};

/// A rectangular box inside a volume, in voxel coordinates — the 3-D
/// counterpart of [`TileRect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrickRect {
    /// The in-plane rectangle (x/y extent, shared by every covered slice).
    pub plane: TileRect,
    /// First covered slice.
    pub z: usize,
    /// Number of covered slices.
    pub depth: usize,
}

impl BrickRect {
    /// Number of voxels covered.
    #[must_use]
    pub fn voxel_count(&self) -> usize {
        self.plane.pixel_count() * self.depth
    }

    /// One past the last covered slice.
    #[must_use]
    pub fn back(&self) -> usize {
        self.z + self.depth
    }
}

/// An owned stack of equally shaped slices — the volume exchange type.
///
/// Samples are stored slice-major and row-major within a slice, so slice `z`
/// is the contiguous range `z * width * height ..` and borrows as an
/// ordinary [`ImageView`]. All slices share one bit depth and every sample
/// is validated against it on construction, exactly like [`Image`].
///
/// ```
/// use lwc_image::{synth, ImageStack};
///
/// let volume = synth::ct_volume(48, 40, 7, 12, 1);
/// assert_eq!((volume.width(), volume.height(), volume.depth()), (48, 40, 7));
/// let slice = volume.slice(3).unwrap();
/// assert_eq!(slice.get(0, 0), volume.get(0, 0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageStack {
    width: usize,
    height: usize,
    depth: usize,
    bit_depth: u32,
    samples: Vec<i32>,
}

impl ImageStack {
    /// Builds a stack from a slice-major sample buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for zero dimensions or a
    /// buffer whose length is not `width * height * depth`,
    /// [`ImageError::InvalidBitDepth`] outside 1–16, and
    /// [`ImageError::SampleOutOfRange`] if any sample does not fit the
    /// declared depth.
    pub fn from_samples(
        width: usize,
        height: usize,
        depth: usize,
        bit_depth: u32,
        samples: Vec<i32>,
    ) -> Result<Self, ImageError> {
        let voxels = width.checked_mul(height).and_then(|p| p.checked_mul(depth));
        if width == 0 || height == 0 || depth == 0 || voxels != Some(samples.len()) {
            return Err(ImageError::InvalidDimensions { width, height, samples: samples.len() });
        }
        if !(1..=16).contains(&bit_depth) {
            return Err(ImageError::InvalidBitDepth(bit_depth));
        }
        let max = (1i32 << bit_depth) - 1;
        if let Some(&value) = samples.iter().find(|v| !(0..=max).contains(*v)) {
            return Err(ImageError::SampleOutOfRange { value, bit_depth });
        }
        Ok(Self { width, height, depth, bit_depth, samples })
    }

    /// An all-zero stack.
    ///
    /// # Errors
    ///
    /// Returns an error for zero dimensions or an unsupported bit depth.
    pub fn zeros(
        width: usize,
        height: usize,
        depth: usize,
        bit_depth: u32,
    ) -> Result<Self, ImageError> {
        let voxels = width
            .checked_mul(height)
            .and_then(|p| p.checked_mul(depth))
            .ok_or(ImageError::InvalidDimensions { width, height, samples: usize::MAX })?;
        Self::from_samples(width, height, depth, bit_depth, vec![0; voxels])
    }

    /// Stacks owned slices of identical shape into a volume.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] for an empty slice list and
    /// [`ImageError::ShapeMismatch`] when a slice disagrees with the first
    /// one in shape (bit depths must match too).
    pub fn from_slices(slices: &[Image]) -> Result<Self, ImageError> {
        let Some(first) = slices.first() else {
            return Err(ImageError::InvalidDimensions { width: 0, height: 0, samples: 0 });
        };
        let mut samples = Vec::with_capacity(first.pixel_count() * slices.len());
        for slice in slices {
            if slice.width() != first.width()
                || slice.height() != first.height()
                || slice.bit_depth() != first.bit_depth()
            {
                return Err(ImageError::ShapeMismatch {
                    left: (first.width(), first.height()),
                    right: (slice.width(), slice.height()),
                });
            }
            samples.extend_from_slice(slice.samples());
        }
        Self::from_samples(first.width(), first.height(), slices.len(), first.bit_depth(), samples)
    }

    /// Slice width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Slice height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of slices.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Unsigned bit depth shared by every slice.
    #[must_use]
    pub fn bit_depth(&self) -> u32 {
        self.bit_depth
    }

    /// Total number of voxels.
    #[must_use]
    pub fn voxel_count(&self) -> usize {
        self.width * self.height * self.depth
    }

    /// The sample at `(x, y, z)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize, z: usize) -> i32 {
        assert!(
            x < self.width && y < self.height && z < self.depth,
            "voxel ({x},{y},{z}) out of bounds"
        );
        self.samples[(z * self.height + y) * self.width + x]
    }

    /// The slice-major sample buffer.
    #[must_use]
    pub fn samples(&self) -> &[i32] {
        &self.samples
    }

    /// Consumes the stack, returning its sample buffer.
    #[must_use]
    pub fn into_samples(self) -> Vec<i32> {
        self.samples
    }

    /// Borrows slice `z` as an [`ImageView`] (O(1), no copy).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `z >= depth`.
    pub fn slice(&self, z: usize) -> Result<ImageView<'_>, ImageError> {
        if z >= self.depth {
            return Err(ImageError::RegionOutOfBounds {
                rect: (0, z, self.width, self.height),
                image: (self.width, self.height),
            });
        }
        let plane = self.width * self.height;
        ImageView::from_raw(
            &self.samples[z * plane..(z + 1) * plane],
            self.width,
            self.height,
            self.width,
            self.bit_depth,
        )
    }

    /// Copies slice `z` into an owned [`Image`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `z >= depth`.
    pub fn slice_image(&self, z: usize) -> Result<Image, ImageError> {
        self.slice(z)?.to_image()
    }

    /// Borrows slice `z` mutably — the scatter target for decoded bricks.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `z >= depth`.
    pub fn slice_mut(&mut self, z: usize) -> Result<ImageViewMut<'_>, ImageError> {
        if z >= self.depth {
            return Err(ImageError::RegionOutOfBounds {
                rect: (0, z, self.width, self.height),
                image: (self.width, self.height),
            });
        }
        let plane = self.width * self.height;
        ImageViewMut::from_raw(
            &mut self.samples[z * plane..(z + 1) * plane],
            self.width,
            self.height,
            self.width,
            self.bit_depth,
        )
    }

    /// The read-only view of the whole volume.
    #[must_use]
    pub fn view(&self) -> VolumeView<'_> {
        VolumeView {
            samples: &self.samples,
            width: self.width,
            height: self.height,
            depth: self.depth,
            row_stride: self.width,
            slice_stride: self.width * self.height,
            bit_depth: self.bit_depth,
        }
    }

    /// The view of the box `rect` — strided in x/y and in z.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if the box does not fit.
    pub fn view_brick(&self, rect: BrickRect) -> Result<VolumeView<'_>, ImageError> {
        self.view().subvolume(rect)
    }
}

/// A read-only strided window into a volume's samples — the 3-D counterpart
/// of [`ImageView`]. Rows are contiguous; consecutive rows are `row_stride`
/// samples apart and consecutive slices `slice_stride` samples apart.
#[derive(Debug, Clone, Copy)]
pub struct VolumeView<'a> {
    samples: &'a [i32],
    width: usize,
    height: usize,
    depth: usize,
    row_stride: usize,
    slice_stride: usize,
    bit_depth: u32,
}

impl<'a> VolumeView<'a> {
    /// Window width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Window height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of covered slices.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nominal unsigned bit depth inherited from the underlying stack.
    #[must_use]
    pub fn bit_depth(&self) -> u32 {
        self.bit_depth
    }

    /// Number of voxels in the window.
    #[must_use]
    pub fn voxel_count(&self) -> usize {
        self.width * self.height * self.depth
    }

    /// The sample at `(x, y, z)` of the window.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize, z: usize) -> i32 {
        assert!(
            x < self.width && y < self.height && z < self.depth,
            "voxel ({x},{y},{z}) out of bounds"
        );
        self.samples[z * self.slice_stride + y * self.row_stride + x]
    }

    /// Row `y` of slice `z` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height` or `z >= depth`.
    #[must_use]
    pub fn row(&self, y: usize, z: usize) -> &'a [i32] {
        assert!(y < self.height && z < self.depth, "row ({y},{z}) out of bounds");
        let start = z * self.slice_stride + y * self.row_stride;
        &self.samples[start..start + self.width]
    }

    /// Slice `z` of the window as an [`ImageView`] (still strided in x/y).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if `z >= depth`.
    pub fn slice(&self, z: usize) -> Result<ImageView<'a>, ImageError> {
        if z >= self.depth {
            return Err(ImageError::RegionOutOfBounds {
                rect: (0, z, self.width, self.height),
                image: (self.width, self.height),
            });
        }
        ImageView::from_raw(
            &self.samples[z * self.slice_stride..],
            self.width,
            self.height,
            self.row_stride,
            self.bit_depth,
        )
    }

    /// A sub-window of this view; `rect` is in window coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::RegionOutOfBounds`] if the box does not fit.
    pub fn subvolume(&self, rect: BrickRect) -> Result<VolumeView<'a>, ImageError> {
        check_rect(rect.plane, self.width, self.height)?;
        if rect.depth == 0 || rect.back() > self.depth {
            return Err(ImageError::RegionOutOfBounds {
                rect: (rect.plane.x, rect.z, rect.plane.width, rect.depth),
                image: (self.width, self.depth),
            });
        }
        let origin = rect.z * self.slice_stride + rect.plane.y * self.row_stride + rect.plane.x;
        Ok(VolumeView {
            samples: &self.samples[origin..],
            width: rect.plane.width,
            height: rect.plane.height,
            depth: rect.depth,
            row_stride: self.row_stride,
            slice_stride: self.slice_stride,
            bit_depth: self.bit_depth,
        })
    }

    /// Copies the window into an owned slice-major buffer (plane by plane).
    #[must_use]
    pub fn to_samples(&self) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.voxel_count());
        for z in 0..self.depth {
            for y in 0..self.height {
                out.extend_from_slice(self.row(y, z));
            }
        }
        out
    }
}

/// The partition of a volume into bricks: a [`TileGrid`] in the plane and a
/// ragged subdivision along z. Every voxel belongs to exactly one brick and
/// no brick is empty; bricks are indexed plane-major (all tiles of z-layer
/// 0, then all tiles of z-layer 1, ...), so one z-layer of bricks — a *slab*
/// — is a contiguous index range, which is what the bounded-memory slab
/// streaming decoder walks.
///
/// ```
/// use lwc_image::BrickGrid;
///
/// let grid = BrickGrid::new(70, 50, 11, 32, 32, 4).unwrap();
/// assert_eq!((grid.plane().tiles_x(), grid.plane().tiles_y()), (3, 2));
/// assert_eq!(grid.bricks_z(), 3); // ragged back edge: 4 + 4 + 3 slices
/// assert_eq!(grid.brick_count(), 18);
/// assert_eq!(grid.rect(grid.brick_count() - 1).depth, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickGrid {
    plane: TileGrid,
    image_depth: usize,
    brick_depth: usize,
}

impl BrickGrid {
    /// Creates a grid over a `width x height x depth` volume with the given
    /// nominal brick shape. Brick dimensions larger than the volume clip.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] if any dimension is zero.
    pub fn new(
        width: usize,
        height: usize,
        depth: usize,
        tile_width: usize,
        tile_height: usize,
        brick_depth: usize,
    ) -> Result<Self, ImageError> {
        if depth == 0 || brick_depth == 0 {
            return Err(ImageError::InvalidDimensions {
                width,
                height,
                samples: depth.min(brick_depth),
            });
        }
        Ok(Self {
            plane: TileGrid::new(width, height, tile_width, tile_height)?,
            image_depth: depth,
            brick_depth: brick_depth.min(depth),
        })
    }

    /// The in-plane tile partition shared by every z-layer of bricks.
    #[must_use]
    pub fn plane(&self) -> &TileGrid {
        &self.plane
    }

    /// Number of slices of the covered volume.
    #[must_use]
    pub fn image_depth(&self) -> usize {
        self.image_depth
    }

    /// Nominal (interior) brick depth in slices.
    #[must_use]
    pub fn brick_depth(&self) -> usize {
        self.brick_depth
    }

    /// Number of brick layers along z.
    #[must_use]
    pub fn bricks_z(&self) -> usize {
        self.image_depth.div_ceil(self.brick_depth)
    }

    /// Total number of bricks.
    #[must_use]
    pub fn brick_count(&self) -> usize {
        self.bricks_z() * self.plane.tile_count()
    }

    /// `true` if a single brick covers the whole volume.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.brick_count() == 1
    }

    /// The z extent `(first slice, depth)` of brick layer `bz`; the back
    /// layer is clipped to the volume.
    ///
    /// # Panics
    ///
    /// Panics if `bz >= bricks_z()`.
    #[must_use]
    pub fn z_extent(&self, bz: usize) -> (usize, usize) {
        assert!(bz < self.bricks_z(), "brick layer {bz} out of bounds");
        let z = bz * self.brick_depth;
        (z, self.brick_depth.min(self.image_depth - z))
    }

    /// The box of brick `index` in plane-major order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= brick_count()`.
    #[must_use]
    pub fn rect(&self, index: usize) -> BrickRect {
        assert!(index < self.brick_count(), "brick index {index} out of bounds");
        let per_layer = self.plane.tile_count();
        let (z, depth) = self.z_extent(index / per_layer);
        BrickRect { plane: self.plane.rect(index % per_layer), z, depth }
    }

    /// All brick boxes in plane-major order.
    pub fn rects(&self) -> impl Iterator<Item = BrickRect> + '_ {
        (0..self.brick_count()).map(|i| self.rect(i))
    }

    /// Plane-major index of the brick containing voxel `(x, y, z)`, or
    /// `None` outside the volume — coordinate-addressed random access for
    /// region-of-interest decode.
    #[must_use]
    pub fn brick_index_at(&self, x: usize, y: usize, z: usize) -> Option<usize> {
        if z >= self.image_depth {
            return None;
        }
        let tile = self.plane.tile_index_at(x, y)?;
        Some((z / self.brick_depth) * self.plane.tile_count() + tile)
    }

    /// Plane-major indices of the minimal brick set covering the box `rect`
    /// — the work list of a volumetric region-of-interest decode. `None` if
    /// the box is empty or does not fit the volume.
    #[must_use]
    pub fn covering_indices(&self, rect: BrickRect) -> Option<Vec<usize>> {
        if rect.depth == 0 || rect.back() > self.image_depth {
            return None;
        }
        let tiles = self.plane.covering_indices(rect.plane)?;
        let bz0 = rect.z / self.brick_depth;
        let bz1 = (rect.back() - 1) / self.brick_depth;
        let per_layer = self.plane.tile_count();
        let mut indices = Vec::with_capacity(tiles.len() * (bz1 - bz0 + 1));
        for bz in bz0..=bz1 {
            indices.extend(tiles.iter().map(|&t| bz * per_layer + t));
        }
        Some(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn stack_slices_are_zero_copy_windows() {
        let volume = synth::ct_volume(20, 14, 5, 12, 7);
        assert_eq!(volume.voxel_count(), 20 * 14 * 5);
        for z in 0..5 {
            let slice = volume.slice(z).unwrap();
            assert_eq!(slice.stride(), 20);
            for y in [0usize, 7, 13] {
                for x in [0usize, 9, 19] {
                    assert_eq!(slice.get(x, y), volume.get(x, y, z));
                }
            }
            assert_eq!(
                volume.slice_image(z).unwrap().samples(),
                slice.to_image().unwrap().samples()
            );
        }
        assert!(volume.slice(5).is_err());
    }

    #[test]
    fn from_slices_and_back() {
        let slices: Vec<Image> = (0..4).map(|z| synth::mr_slice(16, 12, 12, z as u64)).collect();
        let stack = ImageStack::from_slices(&slices).unwrap();
        for (z, slice) in slices.iter().enumerate() {
            assert_eq!(&stack.slice_image(z).unwrap(), slice);
        }
        assert!(ImageStack::from_slices(&[]).is_err());
        let mut bad = slices.clone();
        bad.push(synth::flat(8, 8, 12, 0));
        assert!(matches!(ImageStack::from_slices(&bad), Err(ImageError::ShapeMismatch { .. })));
    }

    #[test]
    fn construction_validates_shape_depth_and_range() {
        assert!(ImageStack::from_samples(2, 2, 2, 8, vec![0; 8]).is_ok());
        assert!(ImageStack::from_samples(2, 2, 0, 8, vec![]).is_err());
        assert!(ImageStack::from_samples(2, 2, 2, 8, vec![0; 7]).is_err());
        assert!(ImageStack::from_samples(2, 2, 2, 0, vec![0; 8]).is_err());
        assert!(ImageStack::from_samples(2, 2, 2, 17, vec![0; 8]).is_err());
        assert!(matches!(
            ImageStack::from_samples(2, 2, 2, 8, vec![0, 0, 0, 256, 0, 0, 0, 0]),
            Err(ImageError::SampleOutOfRange { value: 256, .. })
        ));
        assert!(matches!(
            ImageStack::from_samples(2, 2, 2, 8, vec![0, 0, -1, 0, 0, 0, 0, 0]),
            Err(ImageError::SampleOutOfRange { value: -1, .. })
        ));
    }

    #[test]
    fn volume_views_are_strided_boxes() {
        let volume = synth::ct_volume(30, 22, 9, 12, 3);
        let rect =
            BrickRect { plane: TileRect { x: 5, y: 4, width: 12, height: 10 }, z: 2, depth: 4 };
        let view = volume.view_brick(rect).unwrap();
        assert_eq!((view.width(), view.height(), view.depth()), (12, 10, 4));
        for z in 0..4 {
            for y in 0..10 {
                for x in 0..12 {
                    assert_eq!(view.get(x, y, z), volume.get(5 + x, 4 + y, 2 + z));
                }
            }
        }
        // Plane-major materialization agrees with direct indexing.
        let gathered = view.to_samples();
        assert_eq!(gathered.len(), rect.voxel_count());
        assert_eq!(gathered[0], volume.get(5, 4, 2));
        assert_eq!(gathered[12 * 10], volume.get(5, 4, 3));
        // Slices of the window stay strided.
        let slice = view.slice(1).unwrap();
        assert_eq!(slice.stride(), 30);
        assert_eq!(slice.get(0, 0), volume.get(5, 4, 3));
        // Out-of-bounds boxes are rejected.
        assert!(volume.view_brick(BrickRect { plane: rect.plane, z: 6, depth: 4 }).is_err());
        assert!(volume.view_brick(BrickRect { plane: rect.plane, z: 0, depth: 0 }).is_err());
    }

    #[test]
    fn brick_grid_covers_every_voxel_exactly_once() {
        for (w, h, d, tw, th, bd) in [
            (64, 64, 8, 16, 16, 4),
            (70, 50, 11, 32, 32, 4),
            (1, 1, 1, 8, 8, 8),
            (37, 53, 13, 8, 16, 5),
            (16, 16, 3, 100, 100, 100),
        ] {
            let grid = BrickGrid::new(w, h, d, tw, th, bd).unwrap();
            let mut hits = vec![0u8; w * h * d];
            for rect in grid.rects() {
                assert!(rect.voxel_count() > 0);
                for z in rect.z..rect.back() {
                    for y in rect.plane.y..rect.plane.bottom() {
                        for x in rect.plane.x..rect.plane.right() {
                            hits[(z * h + y) * w + x] += 1;
                        }
                    }
                }
            }
            assert!(hits.iter().all(|&c| c == 1), "{w}x{h}x{d} in {tw}x{th}x{bd} bricks");
        }
    }

    #[test]
    fn brick_indexing_is_plane_major() {
        let grid = BrickGrid::new(70, 50, 11, 32, 32, 4).unwrap();
        assert_eq!(grid.bricks_z(), 3);
        assert_eq!(grid.brick_count(), 18);
        assert_eq!(grid.z_extent(2), (8, 3));
        // Brick 7 = z-layer 1, plane tile 1.
        let rect = grid.rect(7);
        assert_eq!((rect.z, rect.depth), (4, 4));
        assert_eq!(rect.plane, grid.plane().rect(1));
        assert_eq!(grid.brick_index_at(33, 0, 5), Some(7));
        assert_eq!(grid.brick_index_at(0, 0, 0), Some(0));
        assert_eq!(grid.brick_index_at(69, 49, 10), Some(grid.brick_count() - 1));
        assert_eq!(grid.brick_index_at(70, 0, 0), None);
        assert_eq!(grid.brick_index_at(0, 0, 11), None);
        assert!(!grid.is_single());
        assert!(BrickGrid::new(8, 8, 2, 8, 8, 2).unwrap().is_single());
        assert!(BrickGrid::new(8, 8, 0, 8, 8, 2).is_err());
        assert!(BrickGrid::new(8, 8, 2, 8, 8, 0).is_err());
    }
}
