//! Aggregate statistics of one simulated transform.

use std::fmt;

/// Cycle counts, memory traffic and derived throughput of one forward
/// transform on the simulated architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchReport {
    /// Number of macrocycles executed (one per convolution output).
    pub macrocycles: u64,
    /// Cycles in which the multiplier was busy (load/accumulate).
    pub busy_cycles: u64,
    /// Cycles lost to DRAM refresh extensions.
    pub stall_cycles: u64,
    /// Number of refresh operations serviced.
    pub refreshes: u64,
    /// Words read from the external DRAM.
    pub dram_reads: u64,
    /// Words written to the external DRAM.
    pub dram_writes: u64,
    /// Multiply operations issued (one per busy cycle).
    pub mac_operations: u64,
    /// Largest input-buffer occupancy observed (words).
    pub peak_input_buffer_words: usize,
    /// Largest output-FIFO occupancy observed (words).
    pub peak_fifo_words: usize,
    /// Clock frequency assumed for the timing figures (Hz).
    pub clock_hz: f64,
}

impl ArchReport {
    /// Total clock cycles (busy plus stalls).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.stall_cycles
    }

    /// Multiplier utilization, `busy_cycles / total_cycles` (Section 4).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / self.total_cycles() as f64
    }

    /// Wall-clock seconds for the transform at the configured clock.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.total_cycles() as f64 / self.clock_hz
    }

    /// Transforms per second at the configured clock.
    #[must_use]
    pub fn images_per_second(&self) -> f64 {
        1.0 / self.seconds()
    }
}

impl fmt::Display for ArchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "macrocycles: {}, busy cycles: {}, stalls: {} ({} refreshes)",
            self.macrocycles, self.busy_cycles, self.stall_cycles, self.refreshes
        )?;
        writeln!(
            f,
            "dram: {} reads, {} writes; buffers: input {} words, fifo {} words",
            self.dram_reads, self.dram_writes, self.peak_input_buffer_words, self.peak_fifo_words
        )?;
        write!(
            f,
            "utilization {:.2}%, {:.3} s/image ({:.2} images/s at {:.1} MHz)",
            self.utilization() * 100.0,
            self.seconds(),
            self.images_per_second(),
            self.clock_hz / 1.0e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArchReport {
        ArchReport {
            macrocycles: 1000,
            busy_cycles: 13_000,
            stall_cycles: 126,
            refreshes: 21,
            dram_reads: 1000,
            dram_writes: 1000,
            mac_operations: 13_000,
            peak_input_buffer_words: 25,
            peak_fifo_words: 120,
            clock_hz: 33.0e6,
        }
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let r = sample();
        assert_eq!(r.total_cycles(), 13_126);
        assert!((r.utilization() - 13_000.0 / 13_126.0).abs() < 1e-12);
        assert!((r.seconds() - 13_126.0 / 33.0e6).abs() < 1e-12);
        assert!((r.images_per_second() * r.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_has_zero_utilization() {
        let r = ArchReport { busy_cycles: 0, stall_cycles: 0, ..sample() };
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn display_reports_the_headline_numbers() {
        let text = sample().to_string();
        assert!(text.contains("utilization"));
        assert!(text.contains("images/s"));
        assert!(text.contains("dram"));
    }
}
