//! The full-architecture simulator: functional datapath plus cycle, traffic
//! and buffer accounting.

use crate::dram::DramModel;
use crate::fifo::{FifoBounds, FifoModel};
use crate::input_buffer::{InputBufferModel, InputBufferSpec};
use crate::mac::MacUnit;
use crate::{ArchError, ArchParams, ArchReport};
use lwc_dwt::Decomposition;
use lwc_filters::{FilterBank, QuantizedBank, QuantizedKernel};
use lwc_image::Image;
use lwc_wordlen::WordLengthPlan;

/// Result of simulating one forward transform.
#[derive(Debug, Clone)]
pub struct SimulationRun {
    /// The wavelet coefficients produced by the simulated datapath (raw
    /// fixed-point words in the Mallat layout, identical to
    /// [`lwc_dwt::FixedDwt2d::forward`]).
    pub decomposition: Decomposition<i64>,
    /// Cycle, traffic and throughput statistics.
    pub report: ArchReport,
}

/// Result of simulating one inverse transform.
#[derive(Debug, Clone)]
pub struct InverseSimulationRun {
    /// The reconstructed image (identical to
    /// [`lwc_dwt::FixedDwt2d::inverse`]).
    pub image: Image,
    /// Cycle, traffic and throughput statistics.
    pub report: ArchReport,
}

/// Cycle-accurate simulator of the proposed architecture.
///
/// The functional behaviour is exactly the fixed-point arithmetic of the
/// paper's datapath (32-bit words, Table II integer parts, 64-bit MAC,
/// round half up); on top of it the simulator accounts for:
///
/// * one macrocycle of `L` cycles per convolution output (Fig. 2),
/// * a 6-cycle extension whenever the DRAM requests a refresh,
/// * DRAM read/write traffic (each datum read and written once per pass),
/// * input-buffer occupancy (must stay within the `4l+1 → 32` word sizing),
/// * output-FIFO occupancy for the Table VI depths.
#[derive(Debug, Clone)]
pub struct ArchSimulator {
    params: ArchParams,
    bank: FilterBank,
    quantized: QuantizedBank,
    plan: WordLengthPlan,
    buffer_spec: InputBufferSpec,
}

impl ArchSimulator {
    /// Builds a simulator for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the word-length
    /// plan cannot be built.
    pub fn new(params: ArchParams) -> Result<Self, ArchError> {
        params.validate()?;
        let bank = FilterBank::table1(params.filter);
        let plan = WordLengthPlan::paper_default(&bank, params.scales)
            .map_err(|e| ArchError::Dwt(e.into()))?;
        let quantized =
            QuantizedBank::paper_default(&bank).map_err(|e| ArchError::Dwt(e.into()))?;
        let buffer_spec = InputBufferSpec::for_filter(bank.max_len())?;
        Ok(Self { params, bank, quantized, plan, buffer_spec })
    }

    /// The configuration in use.
    #[must_use]
    pub fn params(&self) -> &ArchParams {
        &self.params
    }

    /// The word-length plan the datapath follows.
    #[must_use]
    pub fn plan(&self) -> &WordLengthPlan {
        &self.plan
    }

    /// The input-buffer sizing (Fig. 4).
    #[must_use]
    pub fn input_buffer_spec(&self) -> InputBufferSpec {
        self.buffer_spec
    }

    /// Simulates the forward transform of `image`.
    ///
    /// # Errors
    ///
    /// * [`ArchError::WorkloadMismatch`] if the image geometry differs from
    ///   the configured one.
    /// * [`ArchError::Hazard`] if a buffer sizing is violated (indicates a
    ///   model bug, not a data problem).
    /// * [`ArchError::Dwt`] for arithmetic overflows.
    pub fn run(&self, image: &Image) -> Result<SimulationRun, ArchError> {
        if image.width() != self.params.image_size || image.height() != self.params.image_size {
            return Err(ArchError::WorkloadMismatch(format!(
                "image is {}x{} but the architecture is configured for {}x{}",
                image.width(),
                image.height(),
                self.params.image_size,
                self.params.image_size
            )));
        }
        let n = self.params.image_size;
        let taps = self.params.macrocycle_cycles();
        let coeff_frac = self.plan.coeff_format().frac_bits();
        let word_bits = self.plan.word_bits();

        let mut state = SimulationState {
            mac: MacUnit::new(),
            dram: DramModel::new(n * n, self.params.macrocycles_per_refresh),
            macrocycles: 0,
            stall_cycles: 0,
            peak_input_buffer: 0,
            peak_fifo: 0,
        };

        // The DRAM image: raw fixed-point words in the Mallat layout.
        let input_shift = self.plan.frac_bits_for_scale(0);
        let mut data: Vec<i64> =
            image.samples().iter().map(|&v| (v as i64) << input_shift).collect();

        for s in 1..=self.params.scales {
            let cur = n >> (s - 1);
            // The Table VI dependence analysis applies while the row is at
            // least as long as the filter support; for the degenerate deepest
            // scales of small images fall back to a minimal legal depth.
            let l = self.params.half_filter_len();
            let fifo_depth = if cur >= 2 * l {
                FifoBounds::for_scale(n, l, s).feasible_depth().max(1)
            } else {
                (cur / 2).max(1)
            };

            // Row pass: scale s-1 format in, scale s format out.
            let in_frac = self.plan.frac_bits_for_scale(s - 1);
            let out_frac = self.plan.frac_bits_for_scale(s);
            for y in 0..cur {
                let row: Vec<i64> = (0..cur).map(|x| data[y * n + x]).collect();
                let (lo, hi) = self.simulate_pass(
                    &row,
                    coeff_frac + in_frac,
                    out_frac,
                    word_bits,
                    taps,
                    fifo_depth,
                    &mut state,
                )?;
                for (k, &v) in lo.iter().enumerate() {
                    data[y * n + k] = v;
                }
                for (k, &v) in hi.iter().enumerate() {
                    data[y * n + cur / 2 + k] = v;
                }
            }

            // Column pass: scale s format in and out.
            let in_frac = self.plan.frac_bits_for_scale(s);
            for x in 0..cur {
                let col: Vec<i64> = (0..cur).map(|y| data[y * n + x]).collect();
                let (lo, hi) = self.simulate_pass(
                    &col,
                    coeff_frac + in_frac,
                    out_frac,
                    word_bits,
                    taps,
                    fifo_depth,
                    &mut state,
                )?;
                for (k, &v) in lo.iter().enumerate() {
                    data[k * n + x] = v;
                }
                for (k, &v) in hi.iter().enumerate() {
                    data[(cur / 2 + k) * n + x] = v;
                }
            }
        }

        let busy_cycles = state.macrocycles * taps;
        let report = ArchReport {
            macrocycles: state.macrocycles,
            busy_cycles,
            stall_cycles: state.stall_cycles,
            refreshes: state.dram.refreshes(),
            dram_reads: state.dram.reads(),
            dram_writes: state.dram.writes(),
            mac_operations: state.mac.multiplies(),
            peak_input_buffer_words: state.peak_input_buffer,
            peak_fifo_words: state.peak_fifo,
            clock_hz: self.params.clock_hz(),
        };
        Ok(SimulationRun {
            decomposition: Decomposition::from_raw(
                data,
                n,
                n,
                self.params.scales,
                self.bank.id(),
                image.bit_depth(),
            ),
            report,
        })
    }

    /// Simulates the inverse transform of a decomposition produced by
    /// [`ArchSimulator::run`] (or by `lwc_dwt::FixedDwt2d::forward` with the
    /// same configuration). The paper's architecture computes the IDWT on the
    /// same datapath with the alignment unit decrementing the integer part
    /// per scale; the cycle cost equals the forward transform's.
    ///
    /// # Errors
    ///
    /// * [`ArchError::WorkloadMismatch`] if the decomposition geometry or
    ///   filter differs from the configuration.
    /// * [`ArchError::Hazard`] / [`ArchError::Dwt`] as in [`ArchSimulator::run`].
    pub fn run_inverse(
        &self,
        decomposition: &Decomposition<i64>,
    ) -> Result<InverseSimulationRun, ArchError> {
        let n = self.params.image_size;
        if decomposition.width() != n
            || decomposition.height() != n
            || decomposition.scales() != self.params.scales
            || decomposition.filter() != self.params.filter
        {
            return Err(ArchError::WorkloadMismatch(format!(
                "decomposition is {}x{} ({} scales, {}) but the architecture is configured for {}x{} ({} scales, {})",
                decomposition.width(),
                decomposition.height(),
                decomposition.scales(),
                decomposition.filter(),
                n,
                n,
                self.params.scales,
                self.params.filter
            )));
        }
        let taps = self.params.macrocycle_cycles();
        let coeff_frac = self.plan.coeff_format().frac_bits();
        let word_bits = self.plan.word_bits();

        let mut state = SimulationState {
            mac: MacUnit::new(),
            dram: DramModel::new(n * n, self.params.macrocycles_per_refresh),
            macrocycles: 0,
            stall_cycles: 0,
            peak_input_buffer: 0,
            peak_fifo: 0,
        };
        let mut data = decomposition.data().to_vec();

        for s in (1..=self.params.scales).rev() {
            let cur = n >> (s - 1);
            // Undo the column pass (scale s format in and out), then the row
            // pass (dropping to the scale s-1 format) — the reverse of the
            // forward schedule.
            let col_out_frac = self.plan.frac_bits_for_scale(s);
            let row_out_frac = self.plan.frac_bits_for_scale(s - 1);
            let in_frac = self.plan.frac_bits_for_scale(s);

            for x in 0..cur {
                let approx: Vec<i64> = (0..cur / 2).map(|y| data[y * n + x]).collect();
                let detail: Vec<i64> = (0..cur / 2).map(|y| data[(cur / 2 + y) * n + x]).collect();
                let merged = self.simulate_synthesis_pass(
                    &approx,
                    &detail,
                    coeff_frac + in_frac,
                    col_out_frac,
                    word_bits,
                    taps,
                    &mut state,
                )?;
                for (y, &v) in merged.iter().enumerate() {
                    data[y * n + x] = v;
                }
            }
            for y in 0..cur {
                let approx: Vec<i64> = (0..cur / 2).map(|x| data[y * n + x]).collect();
                let detail: Vec<i64> = (0..cur / 2).map(|x| data[y * n + cur / 2 + x]).collect();
                let merged = self.simulate_synthesis_pass(
                    &approx,
                    &detail,
                    coeff_frac + in_frac,
                    row_out_frac,
                    word_bits,
                    taps,
                    &mut state,
                )?;
                for (x, &v) in merged.iter().enumerate() {
                    data[y * n + x] = v;
                }
            }
        }

        // Final rounding from the scale-0 format back to integer pixels.
        let frac0 = self.plan.frac_bits_for_scale(0);
        let max = (1i32 << decomposition.input_bit_depth()) - 1;
        let samples: Vec<i32> = data
            .iter()
            .map(|&raw| (lwc_fixed::round_half_up_shift(raw, frac0) as i32).clamp(0, max))
            .collect();
        let image = Image::from_samples(n, n, decomposition.input_bit_depth(), samples)
            .map_err(|e| ArchError::Dwt(e.into()))?;

        let busy_cycles = state.macrocycles * taps;
        let report = ArchReport {
            macrocycles: state.macrocycles,
            busy_cycles,
            stall_cycles: state.stall_cycles,
            refreshes: state.dram.refreshes(),
            dram_reads: state.dram.reads(),
            dram_writes: state.dram.writes(),
            mac_operations: state.mac.multiplies(),
            peak_input_buffer_words: state.peak_input_buffer,
            peak_fifo_words: state.peak_fifo,
            clock_hz: self.params.clock_hz(),
        };
        Ok(InverseSimulationRun { image, report })
    }

    /// Simulates one 1-D synthesis pass (the IDWT counterpart of
    /// [`ArchSimulator::simulate_pass`]): each reconstructed sample is one
    /// macrocycle gathering the synthesis-filter taps whose parity matches
    /// the output position.
    #[allow(clippy::too_many_arguments)]
    fn simulate_synthesis_pass(
        &self,
        approx: &[i64],
        detail: &[i64],
        acc_frac: u32,
        out_frac: u32,
        word_bits: u32,
        taps: u64,
        state: &mut SimulationState,
    ) -> Result<Vec<i64>, ArchError> {
        let half = approx.len();
        let n = (half * 2) as i64;
        let lowpass = self.quantized.synthesis_lowpass();
        let highpass = self.quantized.synthesis_highpass();
        let fifo_depth = half.max(1);
        let mut fifo = FifoModel::new(fifo_depth)?;
        let mut out = Vec::with_capacity(half * 2);

        for sample in 0..half * 2 {
            state.mac.start_macrocycle();
            let mut issued = 0u64;
            for (kernel, coefficients) in [(lowpass, approx), (highpass, detail)] {
                for (i, &c) in kernel.raw().iter().enumerate() {
                    let m = kernel.min_index() + i as i32;
                    // The scatter form adds a[k]·h̃[m] into position
                    // (2k + m) mod n; gather the k that lands on `sample`.
                    let diff = (sample as i64 - i64::from(m)).rem_euclid(n);
                    if diff % 2 == 0 {
                        let k = (diff / 2) as usize;
                        state.mac.mac(c, coefficients[k])?;
                        issued += 1;
                    }
                }
            }
            for _ in issued..taps {
                state.mac.mac(0, 0)?;
            }
            let value = state.mac.finish_macrocycle(acc_frac, out_frac, word_bits)?;
            if fifo.push(value)?.is_some() {
                state.dram.record_write();
            }
            out.push(value);
            state.dram.record_read();
            if state.dram.tick_macrocycle() {
                state.stall_cycles += self.params.refresh_extension_cycles;
            }
            state.macrocycles += 1;
        }
        for _ in fifo.drain() {
            state.dram.record_write();
        }
        state.peak_fifo = state.peak_fifo.max(fifo.peak_occupancy());
        Ok(out)
    }

    /// Simulates one 1-D analysis pass over `signal`, returning the low-pass
    /// and high-pass outputs and charging macrocycles, DRAM traffic and
    /// buffer occupancy to `state`.
    #[allow(clippy::too_many_arguments)]
    fn simulate_pass(
        &self,
        signal: &[i64],
        acc_frac: u32,
        out_frac: u32,
        word_bits: u32,
        taps: u64,
        fifo_depth: usize,
        state: &mut SimulationState,
    ) -> Result<(Vec<i64>, Vec<i64>), ArchError> {
        let len = signal.len();
        let half = len / 2;
        let lowpass = self.quantized.analysis_lowpass();
        let highpass = self.quantized.analysis_highpass();
        let support_min = lowpass.min_index().min(highpass.min_index());
        let support_max = lowpass.max_index().max(highpass.max_index());

        let mut buffer = InputBufferModel::begin_pass(self.buffer_spec, len)?;
        let mut fifo = FifoModel::new(fifo_depth)?;
        let mut low = Vec::with_capacity(half);
        let mut high = Vec::with_capacity(half);

        for k in 0..half {
            buffer.access(k, support_min, support_max)?;
            for (kernel, out) in [(lowpass, &mut low), (highpass, &mut high)] {
                let value =
                    self.macrocycle(signal, k, kernel, taps, acc_frac, out_frac, word_bits, state)?;
                if fifo.push(value)?.is_some() {
                    state.dram.record_write();
                }
                out.push(value);
                state.dram.record_read();
                if state.dram.tick_macrocycle() {
                    state.stall_cycles += self.params.refresh_extension_cycles;
                }
                state.macrocycles += 1;
            }
        }
        for _ in fifo.drain() {
            state.dram.record_write();
        }
        state.peak_input_buffer = state.peak_input_buffer.max(buffer.peak_occupancy());
        state.peak_fifo = state.peak_fifo.max(fifo.peak_occupancy());
        Ok((low, high))
    }

    /// One macrocycle: `taps` MAC slots against the periodic signal followed
    /// by alignment and rounding. Filters shorter than the macrocycle (e.g.
    /// the 11-tap high-pass of the F2 bank) occupy the remaining slots with
    /// zero coefficients, exactly like the zero-padded entries of the
    /// coefficient RAM.
    #[allow(clippy::too_many_arguments)]
    fn macrocycle(
        &self,
        signal: &[i64],
        k: usize,
        kernel: &QuantizedKernel,
        taps: u64,
        acc_frac: u32,
        out_frac: u32,
        word_bits: u32,
        state: &mut SimulationState,
    ) -> Result<i64, ArchError> {
        let n = signal.len() as i64;
        state.mac.start_macrocycle();
        for (i, &c) in kernel.raw().iter().enumerate() {
            let m = kernel.min_index() + i as i32;
            let idx = (2 * k as i64 + i64::from(m)).rem_euclid(n) as usize;
            state.mac.mac(c, signal[idx])?;
        }
        for _ in kernel.len() as u64..taps {
            state.mac.mac(0, 0)?;
        }
        state.mac.finish_macrocycle(acc_frac, out_frac, word_bits)
    }
}

/// Mutable bookkeeping shared across the passes of one run.
#[derive(Debug, Clone)]
struct SimulationState {
    mac: MacUnit,
    dram: DramModel,
    macrocycles: u64,
    stall_cycles: u64,
    peak_input_buffer: usize,
    peak_fifo: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_dwt::FixedDwt2d;
    use lwc_filters::FilterId;
    use lwc_image::synth;

    fn small_params() -> ArchParams {
        ArchParams::new(64, FilterId::F2, 3).unwrap()
    }

    #[test]
    fn simulated_output_matches_the_software_implementation_bit_by_bit() {
        // The paper's validation: "simulated on data taken from random images
        // and gave the same output as a software implementation".
        let params = small_params();
        let simulator = ArchSimulator::new(params).unwrap();
        let image = synth::random_image(64, 64, 12, 99);
        let run = simulator.run(&image).unwrap();

        let software = FixedDwt2d::paper_default(&FilterBank::table1(params.filter), 3).unwrap();
        let reference = software.forward(&image).unwrap();
        assert_eq!(run.decomposition.data(), reference.data());
    }

    #[test]
    fn cycle_counts_match_the_analytic_mac_count() {
        let params = small_params();
        let simulator = ArchSimulator::new(params).unwrap();
        let run = simulator.run(&synth::ct_phantom(64, 64, 12, 1)).unwrap();
        // One macrocycle per convolution output: 2·Σ (N/2^{s-1})² outputs.
        let expected_macrocycles: u64 = (1..=3u32).map(|s| 2 * (64u64 >> (s - 1)).pow(2)).sum();
        assert_eq!(run.report.macrocycles, expected_macrocycles);
        assert_eq!(run.report.busy_cycles, expected_macrocycles * 13);
        assert_eq!(run.report.mac_operations, run.report.busy_cycles);
    }

    #[test]
    fn utilization_is_close_to_the_papers_figure() {
        let params = small_params();
        let simulator = ArchSimulator::new(params).unwrap();
        let run = simulator.run(&synth::random_image(64, 64, 12, 5)).unwrap();
        let u = run.report.utilization();
        assert!((u - crate::schedule::PAPER_UTILIZATION).abs() < 0.002, "utilization {u:.4}");
    }

    #[test]
    fn dram_traffic_reads_and_writes_every_datum_once_per_pass() {
        let params = small_params();
        let simulator = ArchSimulator::new(params).unwrap();
        let run = simulator.run(&synth::random_image(64, 64, 12, 5)).unwrap();
        // Each pass writes exactly its outputs: 2 passes per scale over the
        // shrinking region.
        let expected_writes: u64 = (1..=3u32).map(|s| 2 * (64u64 >> (s - 1)).pow(2)).sum();
        assert_eq!(run.report.dram_writes, expected_writes);
        // Reads include the periodic border samples, so they exceed the
        // writes by a few percent but stay well below 2x.
        assert!(run.report.dram_reads >= expected_writes);
        assert!(run.report.dram_reads < expected_writes * 2);
    }

    #[test]
    fn buffer_occupancies_respect_the_paper_sizings() {
        let params = small_params();
        let simulator = ArchSimulator::new(params).unwrap();
        let run = simulator.run(&synth::mr_slice(64, 64, 12, 2)).unwrap();
        assert!(run.report.peak_input_buffer_words <= simulator.input_buffer_spec().words);
        let max_depth = FifoBounds::for_scale(64, 6, 1).max_depth;
        assert!(run.report.peak_fifo_words <= max_depth + 1);
    }

    #[test]
    fn mismatched_images_are_rejected() {
        let simulator = ArchSimulator::new(small_params()).unwrap();
        let image = synth::flat(32, 32, 12, 0);
        assert!(matches!(simulator.run(&image), Err(ArchError::WorkloadMismatch(_))));
    }

    #[test]
    fn shorter_filters_produce_proportionally_fewer_busy_cycles() {
        let f4 = ArchSimulator::new(ArchParams::new(64, FilterId::F4, 3).unwrap()).unwrap();
        let f2 = ArchSimulator::new(ArchParams::new(64, FilterId::F2, 3).unwrap()).unwrap();
        let image = synth::random_image(64, 64, 12, 7);
        let run4 = f4.run(&image).unwrap();
        let run2 = f2.run(&image).unwrap();
        assert_eq!(run4.report.macrocycles, run2.report.macrocycles);
        assert_eq!(run4.report.busy_cycles * 13, run2.report.busy_cycles * 5);
    }

    #[test]
    fn accessors_expose_configuration() {
        let simulator = ArchSimulator::new(small_params()).unwrap();
        assert_eq!(simulator.params().image_size, 64);
        assert_eq!(simulator.plan().scales(), 3);
        assert_eq!(simulator.input_buffer_spec().words, 32);
    }

    #[test]
    fn inverse_simulation_matches_the_software_idwt_and_restores_the_image() {
        let params = small_params();
        let simulator = ArchSimulator::new(params).unwrap();
        let image = synth::random_image(64, 64, 12, 2024);

        let forward = simulator.run(&image).unwrap();
        let inverse = simulator.run_inverse(&forward.decomposition).unwrap();

        // Word-for-word agreement with the software IDWT…
        let software = FixedDwt2d::paper_default(&FilterBank::table1(params.filter), 3).unwrap();
        let reference = software.inverse(&forward.decomposition).unwrap();
        assert_eq!(inverse.image.samples(), reference.samples());
        // …and the full hardware round trip is lossless.
        assert_eq!(inverse.image.samples(), image.samples());
    }

    #[test]
    fn inverse_costs_the_same_cycles_as_the_forward_transform() {
        // Section 2: "The same result is valid for the IDWT."
        let simulator = ArchSimulator::new(small_params()).unwrap();
        let image = synth::ct_phantom(64, 64, 12, 4);
        let forward = simulator.run(&image).unwrap();
        let inverse = simulator.run_inverse(&forward.decomposition).unwrap();
        assert_eq!(inverse.report.macrocycles, forward.report.macrocycles);
        assert_eq!(inverse.report.busy_cycles, forward.report.busy_cycles);
        assert!((inverse.report.utilization() - forward.report.utilization()).abs() < 1e-6);
    }

    #[test]
    fn inverse_rejects_foreign_decompositions() {
        let simulator = ArchSimulator::new(small_params()).unwrap();
        let other = ArchSimulator::new(ArchParams::new(64, FilterId::F4, 3).unwrap()).unwrap();
        let image = synth::random_image(64, 64, 12, 8);
        let forward = other.run(&image).unwrap();
        assert!(matches!(
            simulator.run_inverse(&forward.decomposition),
            Err(ArchError::WorkloadMismatch(_))
        ));
    }
}
