//! The MAC datapath unit: two-stage pipelined multiplier, 64-bit
//! accumulator, alignment and rounding (Fig. 3, Sections 4.2–4.3).

use crate::ArchError;
use lwc_fixed::{align_and_round_checked, MacAccumulator};

/// The arithmetic heart of the architecture.
///
/// Functionally it performs exactly the arithmetic of the fixed-point DWT in
/// `lwc-dwt` (so the simulator's output can be compared bit by bit with the
/// software implementation); in addition it tracks how many multiply
/// operations were issued, which the report turns into cycle counts.
#[derive(Debug, Clone, Default)]
pub struct MacUnit {
    accumulator: MacAccumulator,
    multiplies: u64,
    pipeline_stages: u32,
}

impl MacUnit {
    /// Creates the unit with the paper's two-stage pipelined multiplier.
    #[must_use]
    pub fn new() -> Self {
        Self { accumulator: MacAccumulator::new(), multiplies: 0, pipeline_stages: 2 }
    }

    /// Pipeline depth of the multiplier (2 in the paper).
    #[must_use]
    pub fn pipeline_stages(&self) -> u32 {
        self.pipeline_stages
    }

    /// Clears the accumulator at the start of a macrocycle.
    pub fn start_macrocycle(&mut self) {
        self.accumulator.clear();
    }

    /// Issues one multiply–accumulate of a coefficient word and a data word.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the 64-bit accumulation overflows (indicates
    /// a mis-configured word-length plan).
    pub fn mac(&mut self, coefficient: i64, data: i64) -> Result<(), ArchError> {
        self.multiplies += 1;
        self.accumulator
            .mac(coefficient, data)
            .map_err(|e| ArchError::Dwt(lwc_dwt::DwtError::Fixed(e)))?;
        Ok(())
    }

    /// Finishes the macrocycle: aligns the accumulator from `acc_frac_bits`
    /// to `out_frac_bits` and rounds into a `word_bits` word.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the rounded result does not fit the word.
    pub fn finish_macrocycle(
        &mut self,
        acc_frac_bits: u32,
        out_frac_bits: u32,
        word_bits: u32,
    ) -> Result<i64, ArchError> {
        align_and_round_checked(self.accumulator.value(), acc_frac_bits, out_frac_bits, word_bits)
            .map_err(|e| ArchError::Dwt(lwc_dwt::DwtError::Fixed(e)))
    }

    /// Total multiply operations issued since construction.
    #[must_use]
    pub fn multiplies(&self) -> u64 {
        self.multiplies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macrocycle_produces_a_rounded_dot_product() {
        let mut unit = MacUnit::new();
        unit.start_macrocycle();
        // Coefficients in Q2.4, data in Q4.2 -> accumulator has 6 frac bits.
        unit.mac(8, 12).unwrap(); // 0.5 * 3.0 = 1.5
        unit.mac(16, 4).unwrap(); // 1.0 * 1.0 = 1.0
        let out = unit.finish_macrocycle(6, 2, 16).unwrap();
        assert_eq!(out, 10, "2.5 in Q.2 is raw 10");
        assert_eq!(unit.multiplies(), 2);
        assert_eq!(unit.pipeline_stages(), 2);
    }

    #[test]
    fn successive_macrocycles_are_independent() {
        let mut unit = MacUnit::new();
        unit.start_macrocycle();
        unit.mac(1 << 10, 1 << 10).unwrap();
        let first = unit.finish_macrocycle(20, 10, 32).unwrap();
        unit.start_macrocycle();
        unit.mac(1 << 10, 1 << 10).unwrap();
        let second = unit.finish_macrocycle(20, 10, 32).unwrap();
        assert_eq!(first, second);
        assert_eq!(unit.multiplies(), 2);
    }

    #[test]
    fn word_overflow_is_reported() {
        let mut unit = MacUnit::new();
        unit.start_macrocycle();
        unit.mac(i32::MAX as i64, 1 << 20).unwrap();
        assert!(unit.finish_macrocycle(0, 0, 16).is_err());
    }
}
