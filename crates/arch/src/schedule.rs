//! The macrocycle schedule of Fig. 2 and the multiplier-utilization figure.
//!
//! A MAC computation for one convolution output occupies a **macrocycle** of
//! `L` cycles (0‥12 for the 13-tap bank). Cycles 13‥18 extend the macrocycle
//! when the external DRAM requests a refresh. Every macrocycle performs one
//! DRAM read, one DRAM write, `L` coefficient-RAM reads and `L`
//! multiply–accumulate steps; the output FIFO is written once and read once.

use std::fmt;

/// What the DRAM manager does in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramSlot {
    /// No DRAM activity.
    Idle,
    /// Read one datum from the external DRAM.
    Read,
    /// Write one datum to the external DRAM.
    Write,
    /// Branch into the refresh extension.
    Branch,
    /// DRAM refresh in progress.
    Refresh,
}

/// What the input buffer / coefficient path does in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferSlot {
    /// Read coefficient (and buffered datum) number `i` (1-based, as in
    /// Fig. 2's `rd_cf1` … `rd_cf13`).
    ReadCoefficient(u8),
    /// No buffer activity.
    Idle,
    /// Decrement the buffer pointer while the refresh completes.
    DecrementPointer,
}

/// What the accumulator control does in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulatorSlot {
    /// Load the first product (clears the previous accumulation).
    Load,
    /// Accumulate a product.
    Accumulate,
    /// Hold the value (refresh extension).
    Hold,
}

/// What the output FIFO does in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoSlot {
    /// No FIFO activity.
    Idle,
    /// Write the finished result into the FIFO.
    Write,
    /// Read the oldest result from the FIFO (towards the DRAM write port).
    Read,
}

/// One cycle of the macrocycle schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleOps {
    /// Cycle index within the macrocycle.
    pub cycle: u8,
    /// DRAM manager activity.
    pub dram: DramSlot,
    /// Input buffer / coefficient RAM activity.
    pub buffer: BufferSlot,
    /// Accumulator control.
    pub accumulator: AccumulatorSlot,
    /// Output FIFO activity.
    pub fifo: FifoSlot,
}

/// A complete macrocycle: `taps` working cycles, optionally followed by a
/// refresh extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Macrocycle {
    cycles: Vec<CycleOps>,
    has_refresh: bool,
}

impl Macrocycle {
    /// Builds a normal (no refresh) macrocycle for an `taps`-tap filter,
    /// following Fig. 2: the DRAM read happens in cycle 0, the DRAM write in
    /// cycles 9–10 (scaled for shorter filters), the FIFO is written in
    /// cycle 6 and read in cycle 7, coefficients are read every cycle
    /// starting from `rd_cf4` (the first three were prefetched at the end of
    /// the previous macrocycle).
    ///
    /// # Panics
    ///
    /// Panics if `taps < 2`.
    #[must_use]
    pub fn normal(taps: u8) -> Self {
        assert!(taps >= 2, "a macrocycle needs at least two taps");
        let mut cycles = Vec::with_capacity(taps as usize);
        for c in 0..taps {
            // Coefficient index wraps around the macrocycle with a phase of
            // +3 (Fig. 2: cycle 0 reads rd_cf4, cycle 9 reads rd_cf13,
            // cycle 10 reads rd_cf1).
            let coef = (c + 3) % taps + 1;
            let dram = if c == 0 {
                DramSlot::Read
            } else if c == taps - 4 || c == taps - 3 {
                DramSlot::Write
            } else {
                DramSlot::Idle
            };
            let accumulator =
                if c == 0 { AccumulatorSlot::Load } else { AccumulatorSlot::Accumulate };
            let fifo = if c == taps / 2 {
                FifoSlot::Write
            } else if c == taps / 2 + 1 {
                FifoSlot::Read
            } else {
                FifoSlot::Idle
            };
            cycles.push(CycleOps {
                cycle: c,
                dram,
                buffer: BufferSlot::ReadCoefficient(coef),
                accumulator,
                fifo,
            });
        }
        Self { cycles, has_refresh: false }
    }

    /// Builds a macrocycle extended by `extension` refresh cycles (Fig. 2,
    /// cycles 13–18): the accumulator holds, the buffer pointer is rewound
    /// and the first three coefficients are re-read while the DRAM refreshes.
    ///
    /// # Panics
    ///
    /// Panics if `taps < 2`.
    #[must_use]
    pub fn with_refresh(taps: u8, extension: u8) -> Self {
        let mut base = Self::normal(taps);
        for e in 0..extension {
            let cycle = taps + e;
            let dram = if e == 0 { DramSlot::Branch } else { DramSlot::Refresh };
            let buffer = match e {
                0 | 1 => BufferSlot::Idle,
                2 => BufferSlot::DecrementPointer,
                _ => BufferSlot::ReadCoefficient(e - 2),
            };
            base.cycles.push(CycleOps {
                cycle,
                dram,
                buffer,
                accumulator: AccumulatorSlot::Hold,
                fifo: FifoSlot::Idle,
            });
        }
        base.has_refresh = true;
        base
    }

    /// The per-cycle operations.
    #[must_use]
    pub fn cycles(&self) -> &[CycleOps] {
        &self.cycles
    }

    /// Total number of clock cycles the macrocycle occupies.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// `true` when the macrocycle carries a refresh extension.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// `true` when the macrocycle carries a refresh extension.
    #[must_use]
    pub fn has_refresh(&self) -> bool {
        self.has_refresh
    }

    /// Number of cycles in which the multiplier is doing useful work
    /// (load or accumulate).
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.cycles.iter().filter(|c| c.accumulator != AccumulatorSlot::Hold).count() as u64
    }
}

impl fmt::Display for Macrocycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycle | dram     | buffer   | acc  | fifo")?;
        for c in &self.cycles {
            let dram = match c.dram {
                DramSlot::Idle => "-",
                DramSlot::Read => "rd",
                DramSlot::Write => "wr",
                DramSlot::Branch => "branch",
                DramSlot::Refresh => "refresh",
            };
            let buffer = match c.buffer {
                BufferSlot::ReadCoefficient(i) => format!("rd_cf{i}"),
                BufferSlot::Idle => "idle".to_owned(),
                BufferSlot::DecrementPointer => "dec ptr".to_owned(),
            };
            let acc = match c.accumulator {
                AccumulatorSlot::Load => "load",
                AccumulatorSlot::Accumulate => "acc",
                AccumulatorSlot::Hold => "hold",
            };
            let fifo = match c.fifo {
                FifoSlot::Idle => "-",
                FifoSlot::Write => "wr",
                FifoSlot::Read => "rd",
            };
            writeln!(f, "{:>5} | {:<8} | {:<8} | {:<4} | {}", c.cycle, dram, buffer, acc, fifo)?;
        }
        Ok(())
    }
}

/// Multiplier utilization for a run of `total_macrocycles` macrocycles of
/// `taps` cycles each, of which `refresh_macrocycles` were extended by
/// `extension` cycles:
/// `busy_cycles / total_cycles` as in Section 4.
#[must_use]
pub fn utilization(
    taps: u64,
    total_macrocycles: u64,
    refresh_macrocycles: u64,
    extension: u64,
) -> f64 {
    let busy = taps * total_macrocycles;
    let total = busy + refresh_macrocycles * extension;
    if total == 0 {
        return 0.0;
    }
    busy as f64 / total as f64
}

/// The utilization figure the paper quotes (99.04 %).
pub const PAPER_UTILIZATION: f64 = 0.9904;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_macrocycle_has_one_read_one_result() {
        let m = Macrocycle::normal(13);
        assert_eq!(m.len(), 13);
        assert!(!m.has_refresh());
        assert_eq!(m.cycles().iter().filter(|c| c.dram == DramSlot::Read).count(), 1);
        assert_eq!(m.cycles().iter().filter(|c| c.dram == DramSlot::Write).count(), 2);
        assert_eq!(m.cycles().iter().filter(|c| c.fifo == FifoSlot::Write).count(), 1);
        assert_eq!(m.cycles().iter().filter(|c| c.fifo == FifoSlot::Read).count(), 1);
        // One load followed by 12 accumulates: 13 MACs.
        assert_eq!(m.busy_cycles(), 13);
    }

    #[test]
    fn every_coefficient_is_read_exactly_once_per_macrocycle() {
        let m = Macrocycle::normal(13);
        let mut seen = vec![0u32; 14];
        for c in m.cycles() {
            if let BufferSlot::ReadCoefficient(i) = c.buffer {
                seen[i as usize] += 1;
            }
        }
        assert!(seen[1..=13].iter().all(|&n| n == 1), "{seen:?}");
        // Fig. 2: cycle 0 reads rd_cf4.
        assert_eq!(m.cycles()[0].buffer, BufferSlot::ReadCoefficient(4));
    }

    #[test]
    fn refresh_extension_holds_the_accumulator() {
        let m = Macrocycle::with_refresh(13, 6);
        assert_eq!(m.len(), 19);
        assert!(m.has_refresh());
        assert_eq!(m.busy_cycles(), 13, "the multiplier is idle only during refresh");
        let tail = &m.cycles()[13..];
        assert!(tail.iter().all(|c| c.accumulator == AccumulatorSlot::Hold));
        assert_eq!(tail[0].dram, DramSlot::Branch);
        assert!(tail[1..].iter().all(|c| c.dram == DramSlot::Refresh));
        assert_eq!(tail[2].buffer, BufferSlot::DecrementPointer);
    }

    #[test]
    fn utilization_matches_the_paper_for_the_default_refresh_interval() {
        // One refresh every 48 macrocycles of 13 cycles, 6-cycle extension.
        let total_macro = 48_000;
        let refreshes = total_macro / 48;
        let u = utilization(13, total_macro, refreshes, 6);
        assert!(
            (u - PAPER_UTILIZATION).abs() < 0.0015,
            "utilization {u:.4} vs paper {PAPER_UTILIZATION}"
        );
    }

    #[test]
    fn utilization_degrades_with_refresh_frequency() {
        let relaxed = utilization(13, 1000, 10, 6);
        let stressed = utilization(13, 1000, 100, 6);
        assert!(relaxed > stressed);
        assert_eq!(utilization(13, 0, 0, 6), 0.0);
        assert_eq!(utilization(13, 100, 0, 6), 1.0);
    }

    #[test]
    fn display_renders_the_fig2_table() {
        let text = Macrocycle::with_refresh(13, 6).to_string();
        assert!(text.contains("rd_cf4"));
        assert!(text.contains("refresh"));
        assert!(text.contains("hold"));
    }

    #[test]
    fn shorter_filters_shrink_the_macrocycle() {
        let m = Macrocycle::normal(5);
        assert_eq!(m.len(), 5);
        assert_eq!(m.busy_cycles(), 5);
    }
}
