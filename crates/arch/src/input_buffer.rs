//! The folded two-bank input buffer (Section 4.1, Fig. 4, Table IV).
//!
//! To read every DRAM datum exactly once, the architecture keeps the samples
//! that are still *live* (needed by upcoming convolutions of the current
//! row/column) in a small on-chip buffer. With a filter of length
//! `L = 2l + 1` and the periodic ("circular convolution") border extension,
//! the minimum buffer size is `B = 4l + 1`, rounded up to the next power of
//! two to simplify the addressing. The buffer is folded into two banks of
//! `B/2` words whose roles swap between even and odd rows/columns; Bank 2 is
//! refilled `#rounds` times per row/column (Table IV).

use crate::ArchError;
use std::collections::VecDeque;
use std::fmt;

/// Static sizing of the input buffer for a given filter length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputBufferSpec {
    /// Filter length `L`.
    pub filter_len: usize,
    /// Half length `l` (`L = 2l + 1` for odd filters; even filters round up).
    pub half_len: usize,
    /// Minimum number of words, `4l + 1`.
    pub minimum_words: usize,
    /// Implemented number of words (next power of two).
    pub words: usize,
}

impl InputBufferSpec {
    /// Builds the sizing for a filter of `filter_len` taps.
    ///
    /// # Errors
    ///
    /// Returns an error if the filter is shorter than 2 taps.
    pub fn for_filter(filter_len: usize) -> Result<Self, ArchError> {
        if filter_len < 2 {
            return Err(ArchError::InvalidConfiguration(
                "the input buffer needs a filter of at least 2 taps".into(),
            ));
        }
        let half_len = filter_len / 2;
        let minimum_words = 4 * half_len + 1;
        Ok(Self { filter_len, half_len, minimum_words, words: minimum_words.next_power_of_two() })
    }

    /// Size of each of the two banks (half the implemented buffer).
    #[must_use]
    pub fn bank_words(&self) -> usize {
        self.words / 2
    }

    /// Number of times Bank 2 is reused while processing one row/column of
    /// `row_len` samples (Table IV).
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is zero.
    #[must_use]
    pub fn bank2_rounds(&self, row_len: usize) -> usize {
        assert!(row_len > 0, "row length must be positive");
        (row_len / self.bank_words()).saturating_sub(1)
    }

    /// Table IV: Bank 2 reuse counts per scale for an `n × n` image
    /// decomposed over `scales` scales.
    #[must_use]
    pub fn table4(&self, n: usize, scales: u32) -> Vec<(u32, usize, usize)> {
        (1..=scales)
            .map(|s| {
                let row_len = n >> (s - 1);
                (s, row_len, self.bank2_rounds(row_len))
            })
            .collect()
    }
}

impl fmt::Display for InputBufferSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L={} => Bsize = 4*{}+1 = {} -> {} words in two banks of {}",
            self.filter_len,
            self.half_len,
            self.minimum_words,
            self.words,
            self.bank_words()
        )
    }
}

/// Dynamic occupancy model of the input buffer for one row/column pass.
///
/// The model tracks which sample indices are resident and verifies the two
/// properties the sizing relies on: every DRAM sample is loaded exactly once
/// per pass, and the number of simultaneously live samples never exceeds the
/// implemented buffer size.
#[derive(Debug, Clone)]
pub struct InputBufferModel {
    spec: InputBufferSpec,
    row_len: usize,
    resident: VecDeque<i64>,
    loads: u64,
    peak_occupancy: usize,
}

impl InputBufferModel {
    /// Starts a pass over a row/column of `row_len` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is shorter than two samples.
    pub fn begin_pass(spec: InputBufferSpec, row_len: usize) -> Result<Self, ArchError> {
        if row_len < 2 {
            return Err(ArchError::InvalidConfiguration(
                "a pass needs at least two samples".into(),
            ));
        }
        Ok(Self { spec, row_len, resident: VecDeque::new(), loads: 0, peak_occupancy: 0 })
    }

    /// Declares that the convolution for output `k` (0-based, `0 ≤ k <
    /// row_len/2`) needs samples `2k + support_min ..= 2k + support_max`
    /// (periodic indices). Missing samples are loaded (each counted once) and
    /// samples older than the sliding window are retired.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Hazard`] if the live window exceeds the
    /// implemented buffer size.
    pub fn access(
        &mut self,
        k: usize,
        support_min: i32,
        support_max: i32,
    ) -> Result<(), ArchError> {
        let first = 2 * k as i64 + i64::from(support_min);
        let last = 2 * k as i64 + i64::from(support_max);
        // Retire samples that can no longer be needed by any later output of
        // this pass (the window only moves forward by 2 per output).
        while let Some(&front) = self.resident.front() {
            if front < first {
                self.resident.pop_front();
            } else {
                break;
            }
        }
        // Load the samples that are not yet resident.
        let next_needed = self.resident.back().map_or(first, |&b| b + 1);
        for idx in next_needed..=last {
            self.resident.push_back(idx);
            self.loads += 1;
        }
        self.peak_occupancy = self.peak_occupancy.max(self.resident.len());
        if self.resident.len() > self.spec.words {
            return Err(ArchError::Hazard(format!(
                "input buffer needs {} live words but only {} are implemented",
                self.resident.len(),
                self.spec.words
            )));
        }
        Ok(())
    }

    /// Number of load operations performed so far in this pass.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Largest number of simultaneously live samples observed.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Length of the row/column being processed.
    #[must_use]
    pub fn row_len(&self) -> usize {
        self.row_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_matches_the_papers_example() {
        // Section 4.1: L = 13 -> Bsize = 4·6 + 1 = 25 -> 32 words.
        let spec = InputBufferSpec::for_filter(13).unwrap();
        assert_eq!(spec.half_len, 6);
        assert_eq!(spec.minimum_words, 25);
        assert_eq!(spec.words, 32);
        assert_eq!(spec.bank_words(), 16);
    }

    #[test]
    fn table4_is_reproduced_for_512() {
        // Table IV: #rounds = 31, 15, 7, 3, 1, 0 for scales 1..6.
        let spec = InputBufferSpec::for_filter(13).unwrap();
        let rounds: Vec<usize> = spec.table4(512, 6).into_iter().map(|(_, _, r)| r).collect();
        assert_eq!(rounds, vec![31, 15, 7, 3, 1, 0]);
        let sizes: Vec<usize> = spec.table4(512, 6).into_iter().map(|(_, n, _)| n).collect();
        assert_eq!(sizes, vec![512, 256, 128, 64, 32, 16]);
    }

    #[test]
    fn shorter_filters_need_smaller_buffers() {
        let spec5 = InputBufferSpec::for_filter(5).unwrap();
        assert_eq!(spec5.minimum_words, 9);
        assert_eq!(spec5.words, 16);
        let spec9 = InputBufferSpec::for_filter(9).unwrap();
        assert_eq!(spec9.minimum_words, 17);
        assert_eq!(spec9.words, 32);
        assert!(InputBufferSpec::for_filter(1).is_err());
    }

    #[test]
    fn occupancy_model_respects_the_sizing_for_a_full_row() {
        // Sweep a 13-tap analysis over a 512-sample row: every sample in the
        // extended range is loaded exactly once and the live window stays
        // within the 32-word buffer.
        let spec = InputBufferSpec::for_filter(13).unwrap();
        let mut model = InputBufferModel::begin_pass(spec, 512).unwrap();
        for k in 0..256 {
            model.access(k, -6, 6).unwrap();
        }
        assert!(model.peak_occupancy() <= spec.words);
        assert!(model.peak_occupancy() >= spec.filter_len);
        // 512 interior samples plus the periodic extension on both edges
        // (at most 2l = 12 extra reads).
        assert!((512..=512 + 12).contains(&model.loads()), "loads {}", model.loads());
    }

    #[test]
    fn undersized_buffers_are_detected() {
        let mut spec = InputBufferSpec::for_filter(13).unwrap();
        spec.words = 8; // deliberately break the sizing
        let mut model = InputBufferModel::begin_pass(spec, 64).unwrap();
        let mut failed = false;
        for k in 0..32 {
            if model.access(k, -6, 6).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "an 8-word buffer cannot hold a 13-tap live window");
    }

    #[test]
    fn display_shows_the_sizing_rule() {
        let spec = InputBufferSpec::for_filter(13).unwrap();
        let s = spec.to_string();
        assert!(s.contains("4*6+1 = 25"));
        assert!(s.contains("32"));
    }
}
