//! Error type for the architecture model.

use lwc_dwt::DwtError;
use std::error::Error;
use std::fmt;

/// Errors produced by the architecture simulator and its components.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchError {
    /// Invalid configuration (zero size, unsupported depth, …).
    InvalidConfiguration(String),
    /// The input image does not match the configured geometry.
    WorkloadMismatch(String),
    /// A structural hazard was detected (input-buffer overflow, FIFO
    /// under/overflow) — indicates a scheduling bug, not a data problem.
    Hazard(String),
    /// An arithmetic/transform problem from the underlying datapath model.
    Dwt(DwtError),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            ArchError::WorkloadMismatch(msg) => write!(f, "workload mismatch: {msg}"),
            ArchError::Hazard(msg) => write!(f, "structural hazard: {msg}"),
            ArchError::Dwt(e) => write!(f, "datapath error: {e}"),
        }
    }
}

impl Error for ArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchError::Dwt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DwtError> for ArchError {
    fn from(e: DwtError) -> Self {
        ArchError::Dwt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ArchError::InvalidConfiguration("zero image".to_owned());
        assert!(e.to_string().contains("zero image"));
        assert!(Error::source(&e).is_none());
        let e = ArchError::from(DwtError::NotDecomposable { width: 3, height: 3, scales: 1 });
        assert!(Error::source(&e).is_some());
        let e = ArchError::Hazard("fifo underflow".to_owned());
        assert!(e.to_string().contains("fifo underflow"));
    }
}
