//! Output FIFO depth analysis (Section 4.4, Table VI).
//!
//! When computing the FDWT from one scale to the next, the output of a
//! convolution is written back into the same DRAM locations that later
//! convolutions of the same pass still need to read — a write-after-read
//! dependence. The architecture therefore delays the writes through a FIFO
//! of depth `D` carved out of an intermediate RAM. `D` has to be
//!
//! * **large enough** that a new value is never written before the old value
//!   at that address has been read (`D > -min distance`), and
//! * **small enough** that the read-after-write dependences appearing at the
//!   change between vertical and horizontal passes (and in the IDWT) are not
//!   violated.
//!
//! For `N = 512` and `L = 13` the bounds per scale are Table VI:
//! `MIN(D) = 250, 122, 58, 26, 10, 2` and `MAX(D) = 504, 248, 120, 56, 24, 8`,
//! i.e. `MIN(D) = N_s/2 − l` and `MAX(D) = N_s − 2l + 4` with
//! `N_s = N/2^{s-1}`.

use crate::ArchError;
use std::collections::VecDeque;
use std::fmt;

/// FIFO depth bounds for one scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoBounds {
    /// Scale (1-based).
    pub scale: u32,
    /// Row/column length processed at this scale.
    pub row_len: usize,
    /// Minimum admissible FIFO depth.
    pub min_depth: usize,
    /// Maximum admissible FIFO depth.
    pub max_depth: usize,
}

impl FifoBounds {
    /// Computes the bounds for scale `s` of an `n`-wide image filtered with
    /// an `l`-half-length filter (`L = 2l + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero or the scale is too deep for the image.
    #[must_use]
    pub fn for_scale(n: usize, l: usize, s: u32) -> Self {
        assert!(s >= 1, "scales are 1-based");
        let row_len = n >> (s - 1);
        assert!(row_len >= 2 * l, "scale {s} is too deep for an image of {n} rows");
        Self { scale: s, row_len, min_depth: row_len / 2 - l, max_depth: row_len - 2 * l + 4 }
    }

    /// Bounds for every scale — the rows of Table VI.
    #[must_use]
    pub fn table6(n: usize, l: usize, scales: u32) -> Vec<Self> {
        (1..=scales).map(|s| Self::for_scale(n, l, s)).collect()
    }

    /// A depth that satisfies both bounds (the midpoint, which is what the
    /// simulator configures).
    #[must_use]
    pub fn feasible_depth(&self) -> usize {
        (self.min_depth + self.max_depth) / 2
    }

    /// Whether `depth` satisfies both bounds.
    #[must_use]
    pub fn admits(&self, depth: usize) -> bool {
        depth >= self.min_depth && depth <= self.max_depth
    }
}

impl fmt::Display for FifoBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scale {}: N_s = {}, {} <= D <= {}",
            self.scale, self.row_len, self.min_depth, self.max_depth
        )
    }
}

/// Runtime model of the variable-depth FIFO: values written by the datapath
/// emerge `depth` pushes later towards the DRAM write port.
#[derive(Debug, Clone)]
pub struct FifoModel {
    depth: usize,
    queue: VecDeque<i64>,
    writes: u64,
    reads: u64,
    peak_occupancy: usize,
}

impl FifoModel {
    /// Creates a FIFO of the given depth.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero depth.
    pub fn new(depth: usize) -> Result<Self, ArchError> {
        if depth == 0 {
            return Err(ArchError::InvalidConfiguration("fifo depth must be positive".into()));
        }
        Ok(Self { depth, queue: VecDeque::new(), writes: 0, reads: 0, peak_occupancy: 0 })
    }

    /// Configured depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a freshly computed value; returns the value that leaves the
    /// FIFO towards the DRAM (once the pipeline is full).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Hazard`] if the occupancy would exceed the
    /// configured depth — the write-after-read dependence would be violated.
    pub fn push(&mut self, value: i64) -> Result<Option<i64>, ArchError> {
        self.queue.push_back(value);
        self.writes += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.queue.len());
        if self.queue.len() > self.depth {
            let out = self.queue.pop_front();
            self.reads += 1;
            Ok(out)
        } else {
            Ok(None)
        }
    }

    /// Drains the remaining values at the end of a pass.
    pub fn drain(&mut self) -> Vec<i64> {
        self.reads += self.queue.len() as u64;
        self.queue.drain(..).collect()
    }

    /// Number of values pushed so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of values that have left the FIFO.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Largest occupancy observed.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_is_reproduced_for_the_paper_configuration() {
        let bounds = FifoBounds::table6(512, 6, 6);
        let mins: Vec<usize> = bounds.iter().map(|b| b.min_depth).collect();
        let maxs: Vec<usize> = bounds.iter().map(|b| b.max_depth).collect();
        assert_eq!(mins, vec![250, 122, 58, 26, 10, 2]);
        assert_eq!(maxs, vec![504, 248, 120, 56, 24, 8]);
    }

    #[test]
    fn bounds_leave_a_feasible_window_at_every_scale() {
        for b in FifoBounds::table6(512, 6, 6) {
            assert!(b.min_depth < b.max_depth, "{b}");
            assert!(b.admits(b.feasible_depth()));
            assert!(!b.admits(b.min_depth - 1));
            assert!(!b.admits(b.max_depth + 1));
        }
    }

    #[test]
    fn deeper_scales_need_shallower_fifos() {
        let bounds = FifoBounds::table6(512, 6, 6);
        for pair in bounds.windows(2) {
            assert!(pair[1].min_depth < pair[0].min_depth);
            assert!(pair[1].max_depth < pair[0].max_depth);
        }
    }

    #[test]
    fn fifo_delays_values_by_its_depth() {
        let mut fifo = FifoModel::new(3).unwrap();
        assert_eq!(fifo.push(10).unwrap(), None);
        assert_eq!(fifo.push(11).unwrap(), None);
        assert_eq!(fifo.push(12).unwrap(), None);
        assert_eq!(fifo.push(13).unwrap(), Some(10));
        assert_eq!(fifo.push(14).unwrap(), Some(11));
        assert_eq!(fifo.drain(), vec![12, 13, 14]);
        assert_eq!(fifo.writes(), 5);
        assert_eq!(fifo.reads(), 5);
        assert_eq!(fifo.peak_occupancy(), 4);
    }

    #[test]
    fn zero_depth_is_rejected() {
        assert!(FifoModel::new(0).is_err());
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn overly_deep_scales_panic() {
        let _ = FifoBounds::for_scale(64, 6, 4);
    }

    #[test]
    fn other_filter_lengths_shift_the_bounds() {
        // A 9-tap filter (l = 4) relaxes the minimum and raises the maximum.
        let b13 = FifoBounds::for_scale(512, 6, 1);
        let b9 = FifoBounds::for_scale(512, 4, 1);
        assert!(b9.min_depth > b13.min_depth - 3);
        assert!(b9.max_depth > b13.max_depth);
        assert_eq!(b9.min_depth, 252);
        assert_eq!(b9.max_depth, 508);
    }

    #[test]
    fn display_reads_like_table6() {
        let b = FifoBounds::for_scale(512, 6, 1);
        let s = b.to_string();
        assert!(s.contains("250"));
        assert!(s.contains("504"));
    }
}
