//! Architecture configuration parameters.

use crate::ArchError;
use lwc_filters::{FilterBank, FilterId};
use std::fmt;

/// Configuration of one instance of the proposed architecture.
///
/// The defaults correspond to the paper's design point: 512×512 images,
/// the 13-tap F2 bank, 6 scales, a 30 ns (33 MHz) system clock, a DRAM
/// refresh required every 48 macrocycles and serviced by a 6-cycle
/// macrocycle extension (Fig. 2, cycles 13–18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchParams {
    /// Number of image rows/columns `N`.
    pub image_size: usize,
    /// Filter bank the coefficient RAM is loaded with.
    pub filter: FilterId,
    /// Number of decomposition scales.
    pub scales: u32,
    /// System clock period in nanoseconds (30 ns → 33 MHz).
    pub clock_ns: f64,
    /// Number of busy macrocycles between two DRAM refresh requests.
    pub macrocycles_per_refresh: u64,
    /// Extra cycles appended to a macrocycle that services a refresh.
    pub refresh_extension_cycles: u64,
}

impl ArchParams {
    /// Number of cycles in a normal macrocycle (one per filter tap).
    #[must_use]
    pub fn macrocycle_cycles(&self) -> u64 {
        FilterBank::table1(self.filter).max_len() as u64
    }

    /// Creates a configuration with the paper's clocking and refresh
    /// defaults for the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfiguration`] if the image size is not a
    /// multiple of `2^scales`, or if `scales` is zero.
    pub fn new(image_size: usize, filter: FilterId, scales: u32) -> Result<Self, ArchError> {
        let params = Self {
            image_size,
            filter,
            scales,
            clock_ns: 30.0,
            macrocycles_per_refresh: 48,
            refresh_extension_cycles: 6,
        };
        params.validate()?;
        Ok(params)
    }

    /// The paper's design point: 512×512, F2 (13 taps), 6 scales.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`ArchParams::new`].
    pub fn paper_default() -> Result<Self, ArchError> {
        Self::new(512, FilterId::F2, 6)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfiguration`] when a field is
    /// inconsistent.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.scales == 0 {
            return Err(ArchError::InvalidConfiguration("at least one scale is required".into()));
        }
        if self.image_size < 2 || self.image_size % (1 << self.scales) != 0 {
            return Err(ArchError::InvalidConfiguration(format!(
                "image size {} is not divisible by 2^{}",
                self.image_size, self.scales
            )));
        }
        if self.clock_ns <= 0.0 {
            return Err(ArchError::InvalidConfiguration("clock period must be positive".into()));
        }
        if self.macrocycles_per_refresh == 0 {
            return Err(ArchError::InvalidConfiguration(
                "refresh interval must be at least one macrocycle".into(),
            ));
        }
        Ok(())
    }

    /// Clock frequency in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        1.0e9 / self.clock_ns
    }

    /// Half filter length `l` with `L = 2l + 1` (Section 4.1); even-length
    /// filters round up so the buffer still covers the support.
    #[must_use]
    pub fn half_filter_len(&self) -> usize {
        FilterBank::table1(self.filter).max_len() / 2
    }
}

impl fmt::Display for ArchParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} image, {} bank ({} taps), {} scales, {:.0} ns clock",
            self.image_size,
            self.image_size,
            self.filter,
            self.macrocycle_cycles(),
            self.scales,
            self.clock_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_the_design_point() {
        let p = ArchParams::paper_default().unwrap();
        assert_eq!(p.image_size, 512);
        assert_eq!(p.filter, FilterId::F2);
        assert_eq!(p.scales, 6);
        assert_eq!(p.macrocycle_cycles(), 13);
        assert_eq!(p.half_filter_len(), 6);
        assert!((p.clock_hz() - 33.33e6).abs() < 0.5e6);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        assert!(ArchParams::new(0, FilterId::F1, 1).is_err());
        assert!(ArchParams::new(48, FilterId::F1, 5).is_err());
        assert!(ArchParams::new(64, FilterId::F1, 0).is_err());
        assert!(ArchParams::new(64, FilterId::F1, 3).is_ok());
        let mut p = ArchParams::new(64, FilterId::F1, 3).unwrap();
        p.clock_ns = 0.0;
        assert!(p.validate().is_err());
        p.clock_ns = 30.0;
        p.macrocycles_per_refresh = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn macrocycle_length_tracks_the_filter() {
        assert_eq!(ArchParams::new(64, FilterId::F4, 2).unwrap().macrocycle_cycles(), 5);
        assert_eq!(ArchParams::new(64, FilterId::F1, 2).unwrap().macrocycle_cycles(), 9);
    }

    #[test]
    fn display_mentions_the_geometry() {
        let p = ArchParams::paper_default().unwrap();
        let s = p.to_string();
        assert!(s.contains("512x512"));
        assert!(s.contains("F2"));
    }
}
