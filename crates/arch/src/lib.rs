//! # lwc-arch — cycle-accurate model of the proposed VLSI architecture
//!
//! Section 4 of the paper describes a datapath built around **one** 32×32
//! pipelined multiplier with a 64-bit accumulator, an input buffer of
//! `N/2 + 32` words, an external DRAM holding the image, a small coefficient
//! RAM and a variable-depth FIFO that decouples DRAM reads from writes. The
//! computation is organised in **macrocycles** of `L` clock cycles (Fig. 2):
//! one convolution output — one DRAM read, one DRAM write, `L` coefficient
//! reads and `L` MAC operations — per macrocycle, with a six-cycle extension
//! whenever the DRAM needs a refresh.
//!
//! This crate models that architecture at the level the paper itself
//! validates it:
//!
//! * [`schedule`] — the Fig. 2 macrocycle and the multiplier-utilization
//!   formula (99.04 %),
//! * [`input_buffer`] — the folded two-bank input buffer of Fig. 4 and the
//!   Bank 2 reuse counts of Table IV,
//! * [`fifo`] — the write-after-read dependence analysis bounding the FIFO
//!   depth (Table VI),
//! * [`dram`] — the external-memory model with refresh and
//!   each-datum-read-once accounting,
//! * [`mac`] — the two-stage pipelined MAC unit (bit-exact, reusing
//!   `lwc-fixed`),
//! * [`ArchSimulator`] — ties everything together: it transforms real images
//!   with exactly the arithmetic of `lwc_dwt::FixedDwt2d` (the paper's
//!   "same output as a software implementation" check) while counting
//!   cycles, DRAM traffic and stalls, and reports throughput at the 33 MHz
//!   target clock.
//!
//! ```
//! use lwc_arch::{ArchParams, ArchSimulator};
//! use lwc_filters::FilterId;
//! use lwc_image::synth;
//!
//! # fn main() -> Result<(), lwc_arch::ArchError> {
//! let params = ArchParams::new(64, FilterId::F2, 3)?;
//! let simulator = ArchSimulator::new(params)?;
//! let run = simulator.run(&synth::random_image(64, 64, 12, 1))?;
//! assert!(run.report.utilization() > 0.98);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dram;
mod error;
pub mod fifo;
pub mod input_buffer;
pub mod mac;
mod params;
mod report;
pub mod schedule;
mod simulator;

pub use error::ArchError;
pub use params::ArchParams;
pub use report::ArchReport;
pub use simulator::{ArchSimulator, InverseSimulationRun, SimulationRun};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchParams>();
        assert_send_sync::<ArchSimulator>();
        assert_send_sync::<ArchReport>();
        assert_send_sync::<ArchError>();
    }
}
