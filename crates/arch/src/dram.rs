//! External DRAM model: access counting and refresh scheduling.
//!
//! The architecture keeps the whole image (initial, intermediate and final
//! data) in one external image-sized DRAM; on-chip buffering guarantees that
//! *"each data is read and written only once from/to the DRAM"* per pass.
//! DRAM rows must be refreshed periodically; the schedule services a refresh
//! by extending the current macrocycle by six cycles (Fig. 2), which is the
//! only time the multiplier idles.

use std::fmt;

/// External DRAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramModel {
    words: usize,
    reads: u64,
    writes: u64,
    refreshes: u64,
    macrocycles_since_refresh: u64,
    macrocycles_per_refresh: u64,
}

impl DramModel {
    /// Creates a DRAM holding `words` datapath words that requests a refresh
    /// every `macrocycles_per_refresh` macrocycles.
    #[must_use]
    pub fn new(words: usize, macrocycles_per_refresh: u64) -> Self {
        Self {
            words,
            reads: 0,
            writes: 0,
            refreshes: 0,
            macrocycles_since_refresh: 0,
            macrocycles_per_refresh: macrocycles_per_refresh.max(1),
        }
    }

    /// Capacity in words (one image).
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Records one read access.
    pub fn record_read(&mut self) {
        self.reads += 1;
    }

    /// Records one write access.
    pub fn record_write(&mut self) {
        self.writes += 1;
    }

    /// Advances time by one macrocycle and reports whether this macrocycle
    /// must be extended to service a refresh.
    pub fn tick_macrocycle(&mut self) -> bool {
        self.macrocycles_since_refresh += 1;
        if self.macrocycles_since_refresh >= self.macrocycles_per_refresh {
            self.macrocycles_since_refresh = 0;
            self.refreshes += 1;
            true
        } else {
            false
        }
    }

    /// Total read accesses.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total write accesses.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total refresh operations serviced.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

impl fmt::Display for DramModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} words: {} reads, {} writes, {} refreshes",
            self.words, self.reads, self.writes, self.refreshes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut dram = DramModel::new(512 * 512, 48);
        dram.record_read();
        dram.record_read();
        dram.record_write();
        assert_eq!(dram.reads(), 2);
        assert_eq!(dram.writes(), 1);
        assert_eq!(dram.words(), 262144);
    }

    #[test]
    fn refresh_fires_every_interval() {
        let mut dram = DramModel::new(1024, 4);
        let mut refreshes = 0;
        for _ in 0..40 {
            if dram.tick_macrocycle() {
                refreshes += 1;
            }
        }
        assert_eq!(refreshes, 10);
        assert_eq!(dram.refreshes(), 10);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut dram = DramModel::new(16, 0);
        assert!(dram.tick_macrocycle(), "a clamped 1-macrocycle interval refreshes every time");
    }

    #[test]
    fn display_summarizes_traffic() {
        let mut dram = DramModel::new(64, 8);
        dram.record_read();
        assert!(dram.to_string().contains("1 reads"));
    }
}
