//! Scalar fixed-point value wrapper.

use crate::{FixedError, QFormat};
use std::cmp::Ordering;
use std::fmt;

/// A single fixed-point value: a raw two's-complement integer together with
/// the [`QFormat`] that gives it meaning.
///
/// The DWT hot paths keep raw `i64` buffers and track the format at the
/// container level for speed; `Fx` is the convenient, type-checked view used
/// by tests, examples and the configuration code.
///
/// ```
/// use lwc_fixed::{Fx, QFormat};
/// # fn main() -> Result<(), lwc_fixed::FixedError> {
/// let q = QFormat::new(16, 4)?;
/// let x = Fx::from_f64(1.5, q)?;
/// let y = x.rescale(QFormat::new(16, 8)?)?;
/// assert_eq!(y.to_f64(), 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fx {
    raw: i64,
    format: QFormat,
}

impl Fx {
    /// Builds a value from its raw integer representation.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if `raw` does not fit the format.
    pub fn from_raw(raw: i64, format: QFormat) -> Result<Self, FixedError> {
        if !format.contains_raw(raw) {
            return Err(FixedError::Overflow {
                value: format.dequantize(raw),
                format: format.to_string(),
            });
        }
        Ok(Self { raw, format })
    }

    /// Quantizes a real value into the format (round to nearest).
    ///
    /// # Errors
    ///
    /// See [`QFormat::quantize`].
    pub fn from_f64(value: f64, format: QFormat) -> Result<Self, FixedError> {
        Ok(Self { raw: format.quantize(value)?, format })
    }

    /// The zero value in the given format.
    #[must_use]
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// Raw two's-complement representation.
    #[must_use]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Format of this value.
    #[must_use]
    pub fn format(self) -> QFormat {
        self.format
    }

    /// Real value represented.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.format.dequantize(self.raw)
    }

    /// Converts to another format, preserving the represented value exactly
    /// when precision allows and rounding half up otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if the value does not fit the target.
    pub fn rescale(self, target: QFormat) -> Result<Self, FixedError> {
        let src_frac = self.format.frac_bits();
        let dst_frac = target.frac_bits();
        let raw = match dst_frac.cmp(&src_frac) {
            Ordering::Equal => self.raw,
            Ordering::Greater => {
                let shift = dst_frac - src_frac;
                self.raw.checked_shl(shift).ok_or(FixedError::AccumulatorOverflow)?
            }
            Ordering::Less => crate::round_half_up_shift(self.raw, src_frac - dst_frac),
        };
        Self::from_raw(raw, target)
    }

    /// Checked addition of two values in the same format.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if the sum leaves the format range,
    /// or [`FixedError::InvalidFormat`] if the formats differ.
    pub fn checked_add(self, other: Self) -> Result<Self, FixedError> {
        self.same_format(other)?;
        Self::from_raw(self.raw + other.raw, self.format)
    }

    /// Checked subtraction of two values in the same format.
    ///
    /// # Errors
    ///
    /// Same as [`Fx::checked_add`].
    pub fn checked_sub(self, other: Self) -> Result<Self, FixedError> {
        self.same_format(other)?;
        Self::from_raw(self.raw - other.raw, self.format)
    }

    /// Full-precision product: the raw result has
    /// `self.frac_bits() + other.frac_bits()` fractional bits and is meant to
    /// be fed to an accumulator / alignment stage.
    #[must_use]
    pub fn widening_mul_raw(self, other: Self) -> i64 {
        self.raw * other.raw
    }

    fn same_format(self, other: Self) -> Result<(), FixedError> {
        if self.format == other.format {
            Ok(())
        } else {
            Err(FixedError::InvalidFormat {
                total_bits: other.format.total_bits(),
                int_bits: other.format.int_bits(),
            })
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(total: u32, int: u32) -> QFormat {
        QFormat::new(total, int).unwrap()
    }

    #[test]
    fn round_trips_through_f64() {
        let fmt = q(32, 13);
        for v in [-4000.0, -0.5, 0.0, 1.25, 4095.0] {
            let x = Fx::from_f64(v, fmt).unwrap();
            assert!((x.to_f64() - v).abs() <= fmt.lsb() / 2.0);
        }
    }

    #[test]
    fn from_raw_validates_range() {
        let fmt = q(8, 8);
        assert!(Fx::from_raw(127, fmt).is_ok());
        assert!(Fx::from_raw(128, fmt).is_err());
    }

    #[test]
    fn rescale_preserves_value_when_widening_fraction() {
        let x = Fx::from_f64(2.5, q(16, 8)).unwrap();
        let y = x.rescale(q(24, 8)).unwrap();
        assert_eq!(y.to_f64(), 2.5);
    }

    #[test]
    fn rescale_rounds_when_narrowing_fraction() {
        // 0.75 with 2 frac bits -> 1 frac bit rounds to 1.0 (half up)
        let x = Fx::from_raw(3, q(8, 6)).unwrap();
        let y = x.rescale(q(8, 7)).unwrap();
        assert_eq!(y.to_f64(), 1.0);
    }

    #[test]
    fn rescale_detects_overflow() {
        let x = Fx::from_f64(100.0, q(16, 8)).unwrap();
        assert!(x.rescale(q(8, 6)).is_err());
    }

    #[test]
    fn arithmetic_checks_formats_and_ranges() {
        let a = Fx::from_f64(3.0, q(8, 6)).unwrap();
        let b = Fx::from_f64(2.0, q(8, 6)).unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_f64(), 5.0);
        assert_eq!(a.checked_sub(b).unwrap().to_f64(), 1.0);
        let c = Fx::from_f64(2.0, q(8, 7)).unwrap();
        assert!(a.checked_add(c).is_err());
        let big = Fx::from_f64(31.0, q(8, 6)).unwrap();
        assert!(big.checked_add(big).is_err());
    }

    #[test]
    fn widening_mul_has_combined_fraction() {
        let a = Fx::from_f64(1.5, q(8, 6)).unwrap(); // raw 6, 2 frac bits
        let b = Fx::from_f64(2.5, q(8, 5)).unwrap(); // raw 20, 3 frac bits
        let raw = a.widening_mul_raw(b); // 120 with 5 frac bits = 3.75
        assert_eq!(raw as f64 / 32.0, 3.75);
    }

    #[test]
    fn display_mentions_format() {
        let x = Fx::from_f64(1.0, q(8, 4)).unwrap();
        assert_eq!(x.to_string(), "1 (Q4.4)");
    }
}
