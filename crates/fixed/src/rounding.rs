//! Alignment and rounding of the 64-bit accumulator down to the datapath word.
//!
//! Section 4.3 of the paper: *"After the accumulation in 64 bits and the bit
//! alignment, rounding narrows the datapath word length to 32 bits. If the
//! MSB of the truncated bits is 0, truncation is performed; if the MSB is 1,
//! then round-up by one is performed."*
//!
//! That rule is the classic *round half up* (towards +infinity on ties) on
//! two's-complement values, implemented here without resorting to floating
//! point so the hardware behaviour is reproduced bit by bit.

use crate::FixedError;

/// Shifts `acc` right by `shift` bits applying the paper's rounding rule:
/// truncate, then add one if the most significant discarded bit was 1.
///
/// A `shift` of zero returns the accumulator unchanged. Shifts of 63 bits or
/// more collapse the value onto the rounded sign information.
///
/// ```
/// use lwc_fixed::round_half_up_shift;
/// assert_eq!(round_half_up_shift(0b1011, 2), 0b11);    // 2.75 -> 3
/// assert_eq!(round_half_up_shift(0b1001, 2), 0b10);    // 2.25 -> 2
/// assert_eq!(round_half_up_shift(-5, 1), -2);          // -2.5 -> -2 (half up)
/// ```
#[must_use]
pub fn round_half_up_shift(acc: i64, shift: u32) -> i64 {
    if shift == 0 {
        return acc;
    }
    if shift >= 64 {
        // Everything is discarded; only the rounding carry of the sign range
        // could remain, which is zero for any finite accumulator.
        return if acc < 0 { round_half_up_shift(acc, 63) >> 1 } else { 0 };
    }
    let truncated = acc >> shift;
    let msb_of_discarded = (acc >> (shift - 1)) & 1;
    truncated + msb_of_discarded
}

/// Aligns the accumulator from `in_frac_bits` fractional bits to
/// `out_frac_bits` and rounds with the paper's rule.
///
/// The DWT datapath multiplies a coefficient with `c_frac` fractional bits by
/// a sample with `x_frac` fractional bits, so the accumulator holds
/// `c_frac + x_frac` fractional bits; storing the result at the next scale's
/// format requires shifting right by `in_frac_bits - out_frac_bits`.
///
/// # Panics
///
/// Panics if `out_frac_bits > in_frac_bits`: the architecture only ever
/// narrows precision; widening would silently fabricate bits.
#[must_use]
pub fn align_and_round(acc: i64, in_frac_bits: u32, out_frac_bits: u32) -> i64 {
    assert!(
        out_frac_bits <= in_frac_bits,
        "alignment can only discard fractional bits ({in_frac_bits} -> {out_frac_bits})"
    );
    round_half_up_shift(acc, in_frac_bits - out_frac_bits)
}

/// Like [`align_and_round`] but verifies the rounded result fits in a word of
/// `word_bits` bits.
///
/// # Errors
///
/// Returns [`FixedError::Overflow`] if the result does not fit; this is the
/// runtime check that the per-scale integer parts of Table II are sufficient.
pub fn align_and_round_checked(
    acc: i64,
    in_frac_bits: u32,
    out_frac_bits: u32,
    word_bits: u32,
) -> Result<i64, FixedError> {
    let rounded = align_and_round(acc, in_frac_bits, out_frac_bits);
    let min = -(1i64 << (word_bits - 1));
    let max = (1i64 << (word_bits - 1)) - 1;
    if rounded < min || rounded > max {
        return Err(FixedError::Overflow {
            value: rounded as f64 / (out_frac_bits as f64).exp2(),
            format: format!("{word_bits}-bit word with {out_frac_bits} fractional bits"),
        });
    }
    Ok(rounded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shift_is_identity() {
        for v in [-100, -1, 0, 1, 12345] {
            assert_eq!(round_half_up_shift(v, 0), v);
        }
    }

    #[test]
    fn rounds_half_up_positive() {
        // value 5.5 with one fractional bit -> 6
        assert_eq!(round_half_up_shift(11, 1), 6);
        // value 5.25 with two fractional bits -> 5
        assert_eq!(round_half_up_shift(21, 2), 5);
        // value 5.75 -> 6
        assert_eq!(round_half_up_shift(23, 2), 6);
    }

    #[test]
    fn rounds_half_up_negative() {
        // -2.5 -> -2 (round half towards +inf)
        assert_eq!(round_half_up_shift(-5, 1), -2);
        // -2.75 -> -3
        assert_eq!(round_half_up_shift(-11, 2), -3);
        // -2.25 -> -2
        assert_eq!(round_half_up_shift(-9, 2), -2);
    }

    #[test]
    fn matches_floating_point_round_half_up() {
        for acc in -2000i64..2000 {
            for shift in 1..8u32 {
                let expected = ((acc as f64) / (shift as f64).exp2() + 0.5).floor() as i64;
                assert_eq!(round_half_up_shift(acc, shift), expected, "acc={acc} shift={shift}");
            }
        }
    }

    #[test]
    fn align_and_round_narrows_fraction() {
        // 3.625 in Q.3 (raw 29) aligned to Q.1 -> 3.5 (raw 7)
        assert_eq!(align_and_round(29, 3, 1), 7);
        // identity when formats match
        assert_eq!(align_and_round(29, 3, 3), 29);
    }

    #[test]
    #[should_panic(expected = "alignment can only discard")]
    fn align_and_round_rejects_widening() {
        let _ = align_and_round(1, 1, 2);
    }

    #[test]
    fn checked_variant_detects_overflow() {
        // Result 128 does not fit an 8-bit signed word.
        let acc = 128 << 4;
        assert!(align_and_round_checked(acc, 4, 0, 8).is_err());
        assert_eq!(align_and_round_checked(127 << 4, 4, 0, 8).unwrap(), 127);
        assert_eq!(align_and_round_checked(-128 << 4, 4, 0, 8).unwrap(), -128);
    }

    #[test]
    fn large_shift_collapses_to_sign() {
        assert_eq!(round_half_up_shift(123, 64), 0);
        assert_eq!(round_half_up_shift(i64::MIN, 70), -1);
    }
}
