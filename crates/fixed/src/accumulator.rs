//! 64-bit multiply–accumulate unit model.

use crate::{FixedError, ACCUMULATOR_BITS};

/// Software model of the paper's MAC unit: a 32×32 multiplier feeding a
/// 64-bit accumulator (Section 4.2, *"The accumulation is performed in 64
/// bits to increase the accuracy"*).
///
/// The accumulator tracks the number of MAC operations performed so the
/// architecture simulator and the performance model can count work without a
/// second bookkeeping path.
///
/// ```
/// use lwc_fixed::MacAccumulator;
/// # fn main() -> Result<(), lwc_fixed::FixedError> {
/// let mut acc = MacAccumulator::new();
/// acc.mac(3, 5)?;
/// acc.mac(-2, 4)?;
/// assert_eq!(acc.value(), 7);
/// assert_eq!(acc.ops(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacAccumulator {
    value: i64,
    ops: u64,
}

/// Lane width of [`MacAccumulator::mac_slice`]'s chunked inner loop.
///
/// Eight independent 64-bit accumulators fill two 256-bit AVX2 vector
/// registers, which both vectorizes the multiplies and hides the multiply
/// latency behind the second accumulator chain; the wider chunk also keeps
/// the loop profitable when the compiler targets AVX-512.
///
/// The lane count never changes results: under the caller's once-per-pass
/// bound every partial sum stays inside `i64`, so the lane split only
/// reorders exact additions (see [`MacAccumulator::mac_slice`]).
#[cfg(target_arch = "x86_64")]
pub const MAC_LANES: usize = 8;

/// Lane width of [`MacAccumulator::mac_slice`]'s chunked inner loop.
///
/// NEON vectors hold two 64-bit lanes, so four independent accumulators fill
/// two 128-bit registers — enough to break the loop-carried dependency of
/// the scalar MAC chain without spilling on the 32-register NEON file.
#[cfg(target_arch = "aarch64")]
pub const MAC_LANES: usize = 4;

/// Lane width of [`MacAccumulator::mac_slice`]'s chunked inner loop.
///
/// Portable fallback: four independent 64-bit accumulators. Targets without
/// 64-bit SIMD multiplies still benefit because the compiler unrolls the
/// chunk, removing the loop-carried dependency of the scalar MAC chain.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const MAC_LANES: usize = 4;

impl MacAccumulator {
    /// Creates an accumulator cleared to zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the accumulated value (the `load` control step of Fig. 2 loads
    /// the first product, which is equivalent to clearing then accumulating).
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Current accumulated value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Number of multiply–accumulate operations performed since creation.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Performs one multiply–accumulate step: `acc += a * b`.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::AccumulatorOverflow`] if the product or the sum
    /// exceeds the signed 64-bit range; the word-length plan of the paper
    /// guarantees this never happens for in-spec operands, so hitting the
    /// error indicates a mis-configured format rather than a data problem.
    pub fn mac(&mut self, a: i64, b: i64) -> Result<i64, FixedError> {
        let product = (a as i128) * (b as i128);
        let sum = product + self.value as i128;
        if sum > i64::MAX as i128 || sum < i64::MIN as i128 {
            return Err(FixedError::AccumulatorOverflow);
        }
        self.value = sum as i64;
        self.ops += 1;
        Ok(self.value)
    }

    /// Performs one multiply–accumulate step **without** the per-tap overflow
    /// check: `acc += a * b` in plain 64-bit arithmetic.
    ///
    /// This is the interior fast path of the DWT inner loops. It is only
    /// sound when the caller has already established, once per pass, that the
    /// whole dot product cannot leave the 64-bit range — see
    /// [`dot_product_fits_i64`] for the worst-case bound derived from the
    /// kernel's L1 norm. Callers that cannot prove the bound must use
    /// [`Self::mac`].
    pub fn mac_unchecked(&mut self, a: i64, b: i64) -> i64 {
        self.value += a * b;
        self.ops += 1;
        self.value
    }

    /// Multiply–accumulates two equal-length slices **without** per-tap
    /// overflow checks: `acc += Σ coeffs[i] * samples[i]`.
    ///
    /// This is the SIMD-friendly form of [`Self::mac_unchecked`], structured
    /// for the compiler's autovectorizer: the bulk of the slice is consumed
    /// in fixed-width chunks of [`MAC_LANES`] fully independent lane
    /// accumulators (no loop-carried dependency inside a chunk, no per-tap
    /// branch), and only the sub-chunk tail runs the scalar loop.
    ///
    /// # Bit-identity
    ///
    /// The result is **bit-identical** to folding the same taps through
    /// [`Self::mac_unchecked`] one by one: under the caller's once-per-pass
    /// bound (see [`dot_product_fits_i64`]) every partial sum — in *any*
    /// association order, because each is bounded by the full
    /// `L1(coeffs) * max|sample|` — stays inside `i64`, and overflow-free
    /// 64-bit integer addition is associative and commutative. The lane
    /// split therefore reorders only exact additions. The workspace property
    /// tests diff the two paths tap-for-tap across all Table I banks.
    ///
    /// Like [`Self::mac_unchecked`], this is only sound when the caller has
    /// established the bound; callers that cannot prove it must use
    /// [`Self::mac`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mac_slice(&mut self, coeffs: &[i64], samples: &[i64]) -> i64 {
        assert_eq!(coeffs.len(), samples.len(), "mac_slice operands must have equal length");
        let mut lanes = [0i64; MAC_LANES];
        let c_chunks = coeffs.chunks_exact(MAC_LANES);
        let s_chunks = samples.chunks_exact(MAC_LANES);
        let c_tail = c_chunks.remainder();
        let s_tail = s_chunks.remainder();
        for (c, s) in c_chunks.zip(s_chunks) {
            for lane in 0..MAC_LANES {
                lanes[lane] += c[lane] * s[lane];
            }
        }
        let mut sum: i64 = lanes.iter().sum();
        for (&c, &s) in c_tail.iter().zip(s_tail) {
            sum += c * s;
        }
        self.value += sum;
        self.ops += coeffs.len() as u64;
        self.value
    }

    /// Performs a full dot product, clearing the accumulator first.
    ///
    /// # Errors
    ///
    /// Propagates [`FixedError::AccumulatorOverflow`] from [`Self::mac`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(&mut self, a: &[i64], b: &[i64]) -> Result<i64, FixedError> {
        assert_eq!(a.len(), b.len(), "dot product operands must have equal length");
        self.clear();
        for (&x, &y) in a.iter().zip(b.iter()) {
            self.mac(x, y)?;
        }
        Ok(self.value)
    }

    /// Width of the accumulator in bits (always 64, mirroring the hardware).
    #[must_use]
    pub fn width_bits(&self) -> u32 {
        ACCUMULATOR_BITS
    }
}

/// Whether a dot product of coefficients with L1 norm `coeff_abs_sum`
/// against samples of magnitude at most `max_abs_sample` is guaranteed to fit
/// the signed 64-bit accumulator.
///
/// Every partial sum of such a dot product is bounded in magnitude by
/// `coeff_abs_sum * max_abs_sample`, so one evaluation of this predicate per
/// pass replaces a `checked_mul`/`checked_add` pair per tap — the software
/// analogue of the paper's word-length plan, which sizes the 64-bit
/// accumulator once at design time rather than checking in the datapath.
#[must_use]
pub fn dot_product_fits_i64(coeff_abs_sum: u128, max_abs_sample: u128) -> bool {
    coeff_abs_sum.saturating_mul(max_abs_sample) <= i64::MAX as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_products() {
        let mut acc = MacAccumulator::new();
        acc.mac(10, 10).unwrap();
        acc.mac(-3, 7).unwrap();
        assert_eq!(acc.value(), 79);
        assert_eq!(acc.ops(), 2);
    }

    #[test]
    fn clear_resets_value_but_not_op_count() {
        let mut acc = MacAccumulator::new();
        acc.mac(2, 2).unwrap();
        acc.clear();
        assert_eq!(acc.value(), 0);
        assert_eq!(acc.ops(), 1);
    }

    #[test]
    fn dot_product_matches_manual_sum() {
        let mut acc = MacAccumulator::new();
        let a = [1i64, -2, 3, -4];
        let b = [5i64, 6, 7, 8];
        let expected: i64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert_eq!(acc.dot(&a, &b).unwrap(), expected);
        assert_eq!(acc.ops(), 4);
    }

    #[test]
    fn overflow_is_detected() {
        let mut acc = MacAccumulator::new();
        // Two maximal 32-bit operands fit comfortably…
        acc.mac(i32::MAX as i64, i32::MAX as i64).unwrap();
        // …but repeatedly accumulating 63-bit products eventually overflows.
        let mut acc = MacAccumulator::new();
        acc.mac(1 << 31, 1 << 31).unwrap();
        let mut overflowed = false;
        for _ in 0..2 {
            if acc.mac(i64::MAX / 2, 2).is_err() {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_rejects_mismatched_lengths() {
        let mut acc = MacAccumulator::new();
        let _ = acc.dot(&[1, 2], &[1]);
    }

    #[test]
    fn width_is_64_bits() {
        assert_eq!(MacAccumulator::new().width_bits(), 64);
    }

    #[test]
    fn unchecked_mac_matches_checked_mac_within_the_bound() {
        let mut checked = MacAccumulator::new();
        let mut unchecked = MacAccumulator::new();
        for (a, b) in [(3i64, 5i64), (-70_000, 40_000), (1 << 30, -(1 << 20))] {
            checked.mac(a, b).unwrap();
            unchecked.mac_unchecked(a, b);
        }
        assert_eq!(checked.value(), unchecked.value());
        assert_eq!(checked.ops(), unchecked.ops());
    }

    #[test]
    fn mac_slice_matches_the_scalar_mac_chain() {
        // Lengths straddling the lane width: empty, sub-lane, exact multiples
        // and ragged tails, including odd/prime lengths.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 11, 13, 16, 29] {
            let coeffs: Vec<i64> = (0..len).map(|i| (i as i64 - 5) * 1_000_003).collect();
            let samples: Vec<i64> = (0..len).map(|i| (i as i64 * 7 - 11) << 20).collect();
            let mut scalar = MacAccumulator::new();
            for (&c, &s) in coeffs.iter().zip(&samples) {
                scalar.mac_unchecked(c, s);
            }
            let mut sliced = MacAccumulator::new();
            sliced.mac_slice(&coeffs, &samples);
            assert_eq!(scalar.value(), sliced.value(), "len {len}");
            assert_eq!(scalar.ops(), sliced.ops(), "len {len}");
        }
    }

    #[test]
    fn mac_slice_accumulates_on_top_of_prior_state() {
        let mut acc = MacAccumulator::new();
        acc.mac(10, 10).unwrap();
        acc.mac_slice(&[2, -3], &[5, 7]);
        assert_eq!(acc.value(), 100 + 10 - 21);
        assert_eq!(acc.ops(), 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mac_slice_rejects_mismatched_lengths() {
        let mut acc = MacAccumulator::new();
        let _ = acc.mac_slice(&[1, 2, 3], &[1, 2]);
    }

    #[test]
    fn dot_product_bound_predicate() {
        // A Table I kernel's L1 norm is below 3.0 in real units (3 * 2^30 in
        // Q2.30 raw words); against full-range 32-bit samples that fits.
        let coeff_l1 = 3u128 << 30;
        assert!(dot_product_fits_i64(coeff_l1, 1 << 31));
        // A hypothetical kernel with L1 norm 8.0 would not.
        assert!(!dot_product_fits_i64(8 << 30, 1 << 31));
        // Astronomical operands do not, and the saturating product must not
        // wrap around into a false positive.
        assert!(!dot_product_fits_i64(u128::MAX / 2, 4));
        assert!(!dot_product_fits_i64(1 << 40, 1 << 40));
        assert!(dot_product_fits_i64(0, u128::MAX));
    }
}
