//! Error type shared by the fixed-point primitives.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing formats or converting values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FixedError {
    /// The requested format is not representable (e.g. zero total bits,
    /// integer part wider than the word, or a word wider than 63 bits).
    InvalidFormat {
        /// Total word length requested.
        total_bits: u32,
        /// Integer part (including sign) requested.
        int_bits: u32,
    },
    /// A value does not fit in the destination format.
    Overflow {
        /// The value that overflowed, expressed in real units.
        value: f64,
        /// Human readable description of the destination format.
        format: String,
    },
    /// The accumulator exceeded its 64-bit range.
    AccumulatorOverflow,
    /// A non-finite floating point value was supplied.
    NonFinite,
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::InvalidFormat { total_bits, int_bits } => write!(
                f,
                "invalid fixed-point format: {int_bits} integer bits in a {total_bits}-bit word"
            ),
            FixedError::Overflow { value, format } => {
                write!(f, "value {value} does not fit in format {format}")
            }
            FixedError::AccumulatorOverflow => write!(f, "64-bit accumulator overflow"),
            FixedError::NonFinite => write!(f, "non-finite floating point value"),
        }
    }
}

impl Error for FixedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            FixedError::InvalidFormat { total_bits: 32, int_bits: 40 },
            FixedError::Overflow { value: 1.0e9, format: "Q13.19".to_owned() },
            FixedError::AccumulatorOverflow,
            FixedError::NonFinite,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('6'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error>() {}
        assert_error::<FixedError>();
    }
}
