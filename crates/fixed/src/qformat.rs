//! Fixed-point format descriptor.

use crate::FixedError;
use std::fmt;

/// A two's-complement fixed-point format: `total_bits` in the word, of which
/// `int_bits` form the integer part (sign bit included) and
/// `total_bits - int_bits` form the fractional part.
///
/// The paper's datapath uses 32-bit words whose integer part grows with the
/// decomposition scale (Table II); this type is the vocabulary used to carry
/// that per-scale information around the code base.
///
/// ```
/// use lwc_fixed::QFormat;
/// # fn main() -> Result<(), lwc_fixed::FixedError> {
/// let q = QFormat::new(32, 15)?;
/// assert_eq!(q.frac_bits(), 17);
/// assert!(q.max_value() > 16_383.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QFormat {
    total_bits: u32,
    int_bits: u32,
}

impl QFormat {
    /// Creates a format with `total_bits` word length and `int_bits` integer
    /// bits (including the sign bit).
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidFormat`] if `total_bits` is zero or
    /// larger than 63, or if `int_bits` is zero or exceeds `total_bits`.
    pub fn new(total_bits: u32, int_bits: u32) -> Result<Self, FixedError> {
        if total_bits == 0 || total_bits > 63 || int_bits == 0 || int_bits > total_bits {
            return Err(FixedError::InvalidFormat { total_bits, int_bits });
        }
        Ok(Self { total_bits, int_bits })
    }

    /// Total word length in bits.
    #[must_use]
    pub fn total_bits(self) -> u32 {
        self.total_bits
    }

    /// Integer part width in bits (sign bit included).
    #[must_use]
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Fractional part width in bits.
    #[must_use]
    pub fn frac_bits(self) -> u32 {
        self.total_bits - self.int_bits
    }

    /// The weight of one least-significant bit, `2^-frac_bits`.
    #[must_use]
    pub fn lsb(self) -> f64 {
        (self.frac_bits() as f64).exp2().recip()
    }

    /// Smallest raw integer representable in the format.
    #[must_use]
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest raw integer representable in the format.
    #[must_use]
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable real value.
    #[must_use]
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 * self.lsb()
    }

    /// Largest representable real value.
    #[must_use]
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * self.lsb()
    }

    /// Returns `true` if `raw` lies inside the representable range.
    #[must_use]
    pub fn contains_raw(self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }

    /// Quantizes a real value to the nearest representable raw integer
    /// (ties away from zero).
    ///
    /// # Errors
    ///
    /// * [`FixedError::NonFinite`] if `value` is NaN or infinite.
    /// * [`FixedError::Overflow`] if the rounded value falls outside the
    ///   representable range.
    pub fn quantize(self, value: f64) -> Result<i64, FixedError> {
        if !value.is_finite() {
            return Err(FixedError::NonFinite);
        }
        let scaled = value * (self.frac_bits() as f64).exp2();
        let raw = scaled.round();
        if raw < self.min_raw() as f64 || raw > self.max_raw() as f64 {
            return Err(FixedError::Overflow { value, format: self.to_string() });
        }
        Ok(raw as i64)
    }

    /// Converts a raw integer in this format back to a real value.
    #[must_use]
    pub fn dequantize(self, raw: i64) -> f64 {
        raw as f64 * self.lsb()
    }

    /// Returns a copy of this format with a different integer-part width,
    /// keeping the total word length.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QFormat::new`].
    pub fn with_int_bits(self, int_bits: u32) -> Result<Self, FixedError> {
        Self::new(self.total_bits, int_bits)
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_arguments() {
        assert!(QFormat::new(32, 13).is_ok());
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(32, 0).is_err());
        assert!(QFormat::new(32, 33).is_err());
        assert!(QFormat::new(64, 13).is_err(), "64-bit words would overflow i64 products");
    }

    #[test]
    fn ranges_match_twos_complement() {
        let q = QFormat::new(16, 16).unwrap();
        assert_eq!(q.min_raw(), -32768);
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.frac_bits(), 0);
        assert_eq!(q.lsb(), 1.0);
    }

    #[test]
    fn quantize_round_trips_representable_values() {
        let q = QFormat::new(32, 13).unwrap();
        for v in [-4096.0, -1.5, -0.25, 0.0, 0.25, 1.0, 4095.9921875] {
            let raw = q.quantize(v).unwrap();
            assert!((q.dequantize(raw) - v).abs() <= q.lsb() / 2.0);
        }
    }

    #[test]
    fn quantize_rejects_out_of_range() {
        let q = QFormat::new(16, 8).unwrap();
        assert!(matches!(q.quantize(200.0), Err(FixedError::Overflow { .. })));
        assert!(matches!(q.quantize(f64::NAN), Err(FixedError::NonFinite)));
        assert!(matches!(q.quantize(f64::INFINITY), Err(FixedError::NonFinite)));
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let q = QFormat::new(16, 15).unwrap(); // 1 fractional bit
        assert_eq!(q.quantize(0.24).unwrap(), 0);
        assert_eq!(q.quantize(0.26).unwrap(), 1);
        assert_eq!(q.quantize(-0.26).unwrap(), -1);
    }

    #[test]
    fn display_shows_q_notation() {
        let q = QFormat::new(32, 15).unwrap();
        assert_eq!(q.to_string(), "Q15.17");
    }

    #[test]
    fn with_int_bits_keeps_word_length() {
        let q = QFormat::new(32, 13).unwrap();
        let q2 = q.with_int_bits(25).unwrap();
        assert_eq!(q2.total_bits(), 32);
        assert_eq!(q2.int_bits(), 25);
        assert!(q.with_int_bits(40).is_err());
    }

    #[test]
    fn contains_raw_boundary() {
        let q = QFormat::new(8, 8).unwrap();
        assert!(q.contains_raw(127));
        assert!(q.contains_raw(-128));
        assert!(!q.contains_raw(128));
        assert!(!q.contains_raw(-129));
    }

    #[test]
    fn paper_input_format_covers_12_bit_images() {
        // 13 integer bits (sign included) must hold magnitudes up to 4095.
        let q = QFormat::new(32, 13).unwrap();
        assert!(q.max_value() >= 4095.0);
        assert!(q.min_value() <= -4096.0);
    }
}
