//! # lwc-fixed — fixed-point arithmetic for the lossless DWT datapath
//!
//! This crate models the numeric system adopted by the paper
//! *"VLSI Architecture for Lossless Compression of Medical Images Using the
//! Discrete Wavelet Transform"* (Urriza et al., DATE 1998), Section 3:
//!
//! * fixed-point **two's complement** values,
//! * a configurable split between **integer part** (including the sign bit)
//!   and **fractional part** described by [`QFormat`],
//! * a **64-bit multiply–accumulate** path ([`MacAccumulator`]) feeding an
//!   **alignment and rounding** stage ([`align_and_round`]) that narrows the
//!   result back to the datapath word length (32 bits in the paper),
//! * round-half-up behaviour exactly as described in Section 4.3: *"If the
//!   MSB of the truncated bits is 0, truncation is performed; if the MSB is
//!   1, then round-up by one is performed."*
//!
//! The hot paths of the DWT crates operate on raw `i64` values tagged with a
//! [`QFormat`] at the container level; the [`Fx`] wrapper offers an ergonomic,
//! type-checked view for scalar manipulation, tests and examples.
//!
//! ```
//! use lwc_fixed::{QFormat, Fx};
//!
//! # fn main() -> Result<(), lwc_fixed::FixedError> {
//! // 32-bit word, 13 integer bits (incl. sign) as used for the input image.
//! let fmt = QFormat::new(32, 13)?;
//! let a = Fx::from_f64(3.25, fmt)?;
//! let b = Fx::from_f64(-1.5, fmt)?;
//! assert_eq!(a.to_f64() + b.to_f64(), 1.75);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod error;
mod fx;
mod qformat;
mod rounding;

pub use accumulator::{dot_product_fits_i64, MacAccumulator, MAC_LANES};
pub use error::FixedError;
pub use fx::Fx;
pub use qformat::QFormat;
pub use rounding::{align_and_round, align_and_round_checked, round_half_up_shift};

/// Datapath word length used by the paper's architecture (bits).
pub const DATAPATH_WORD_BITS: u32 = 32;

/// Accumulator width used by the paper's MAC unit (bits).
pub const ACCUMULATOR_BITS: u32 = 64;

/// Word length of the input medical images, including the sign bit
/// (12-bit magnitude + sign in the paper).
pub const INPUT_IMAGE_BITS: u32 = 13;

/// Word length of the quantized wavelet filter coefficients.
pub const COEFFICIENT_BITS: u32 = 32;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_constants_match_paper() {
        assert_eq!(DATAPATH_WORD_BITS, 32);
        assert_eq!(ACCUMULATOR_BITS, 64);
        assert_eq!(INPUT_IMAGE_BITS, 13);
        assert_eq!(COEFFICIENT_BITS, 32);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QFormat>();
        assert_send_sync::<Fx>();
        assert_send_sync::<MacAccumulator>();
        assert_send_sync::<FixedError>();
    }
}
