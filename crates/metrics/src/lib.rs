//! # lwc-metrics — rate/distortion metrics for the corpus harness
//!
//! The lossless path needs only one fidelity number (`max|orig − recon| = 0`)
//! but the near-lossless mode trades a bounded per-pixel error against rate,
//! and evaluating that trade on a real corpus needs the standard yardsticks:
//!
//! * [`psnr`] — peak signal-to-noise ratio against the **full-scale peak**
//!   `2^bit_depth − 1` (the same convention as `lwc_image::stats::psnr`),
//!   plus [`psnr_from_mse`] so volume and corpus aggregates can pool squared
//!   error across slices or files before the log.
//! * [`ssim`] — mean structural similarity over 8×8 box windows
//!   (`K1 = 0.01`, `K2 = 0.03`, population variances), the plain-window
//!   form of Wang et al.'s index. Identical images score exactly 1.
//! * [`max_abs_error`] — the L∞ distortion the near-lossless quantizer
//!   guarantees a bound on; `0` is the paper's lossless criterion.
//! * [`FidelityReport`] / [`fidelity`] — the three numbers above for one
//!   image pair, [`volume_fidelity`] for an [`ImageStack`] pair (worst-case
//!   L∞ across slices, mean squared error pooled over all voxels),
//! * [`CompressionReport`] / [`compression`] — rate side: compressed bytes
//!   vs raw bytes, compression ratio and bits per pixel, combined with a
//!   [`FidelityReport`] into the ratio-vs-PSNR rows the corpus harness
//!   prints.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use lwc_image::{Image, ImageError, ImageStack};

/// SSIM stabilising constant factor for the luminance term (`K1`).
pub const SSIM_K1: f64 = 0.01;

/// SSIM stabilising constant factor for the contrast term (`K2`).
pub const SSIM_K2: f64 = 0.03;

/// Window edge for the box-window SSIM, in pixels.
pub const SSIM_WINDOW: usize = 8;

/// Mean squared error between two images.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn mse(reference: &Image, test: &Image) -> Result<f64, ImageError> {
    lwc_image::stats::mse(reference, test)
}

/// Largest absolute pixel difference — the L∞ distortion the near-lossless
/// quantizer bounds. `0` means bit-exact reconstruction.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn max_abs_error(reference: &Image, test: &Image) -> Result<i32, ImageError> {
    lwc_image::stats::max_abs_diff(reference, test)
}

/// Peak signal-to-noise ratio in dB against the full-scale peak
/// `2^bit_depth − 1` of the **reference** image.
///
/// Returns `f64::INFINITY` for identical images. This is the convention
/// compression results are tabulated in: the peak is the nominal full-scale
/// value of the bit depth, not the image's actual dynamic range.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn psnr(reference: &Image, test: &Image) -> Result<f64, ImageError> {
    let e = mse(reference, test)?;
    Ok(psnr_from_mse(e, reference.bit_depth()))
}

/// PSNR in dB from a mean squared error and a bit depth; `f64::INFINITY`
/// when the error is zero.
#[must_use]
pub fn psnr_from_mse(mse: f64, bit_depth: u32) -> f64 {
    if mse == 0.0 {
        return f64::INFINITY;
    }
    let peak = f64::from((1u32 << bit_depth) - 1);
    10.0 * (peak * peak / mse).log10()
}

/// Mean structural similarity over 8×8 box windows.
///
/// The image is covered by non-overlapping [`SSIM_WINDOW`]-square windows;
/// when the width or height is not a multiple of the window, one extra
/// column/row of windows is anchored at the right/bottom edge so every pixel
/// is covered (edge pixels may be counted twice, a standard tiling choice).
/// Each window contributes
/// `((2 μx μy + C1)(2 σxy + C2)) / ((μx² + μy² + C1)(σx² + σy² + C2))`
/// with population (co)variances, `C1 = (K1·L)²`, `C2 = (K2·L)²` and
/// `L = 2^bit_depth − 1`; the result is the mean over windows. Identical
/// images score exactly `1.0`; the index is symmetric in its arguments.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn ssim(reference: &Image, test: &Image) -> Result<f64, ImageError> {
    if reference.width() != test.width() || reference.height() != test.height() {
        return Err(ImageError::ShapeMismatch {
            left: (reference.width(), reference.height()),
            right: (test.width(), test.height()),
        });
    }
    let l = f64::from((1u32 << reference.bit_depth()) - 1);
    let c1 = (SSIM_K1 * l).powi(2);
    let c2 = (SSIM_K2 * l).powi(2);

    let starts = |extent: usize| -> Vec<usize> {
        let mut v: Vec<usize> = (0..extent / SSIM_WINDOW).map(|i| i * SSIM_WINDOW).collect();
        if extent % SSIM_WINDOW != 0 {
            v.push(extent.saturating_sub(SSIM_WINDOW));
        }
        v
    };
    let xs = starts(reference.width());
    let ys = starts(reference.height());

    let mut total = 0.0;
    let mut windows = 0u64;
    for &y0 in &ys {
        for &x0 in &xs {
            let w = SSIM_WINDOW.min(reference.width());
            let h = SSIM_WINDOW.min(reference.height());
            let n = (w * h) as f64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for y in y0..y0 + h {
                let ra = &reference.row(y)[x0..x0 + w];
                let rb = &test.row(y)[x0..x0 + w];
                for (&a, &b) in ra.iter().zip(rb) {
                    let (a, b) = (f64::from(a), f64::from(b));
                    sx += a;
                    sy += b;
                    sxx += a * a;
                    syy += b * b;
                    sxy += a * b;
                }
            }
            let (mx, my) = (sx / n, sy / n);
            let vx = sxx / n - mx * mx;
            let vy = syy / n - my * my;
            let cov = sxy / n - mx * my;
            total += ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                / ((mx * mx + my * my + c1) * (vx + vy + c2));
            windows += 1;
        }
    }
    Ok(total / windows as f64)
}

/// Fidelity of one reconstruction against its reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// PSNR in dB against the full-scale peak; `f64::INFINITY` when
    /// bit-exact.
    pub psnr_db: f64,
    /// Mean SSIM over 8×8 box windows (per-slice mean for volumes).
    pub ssim: f64,
    /// Largest absolute sample difference (L∞ distortion).
    pub max_abs_error: i32,
}

impl FidelityReport {
    /// `true` when the reconstruction is bit-exact.
    #[must_use]
    pub fn lossless(&self) -> bool {
        self.max_abs_error == 0
    }
}

/// Computes PSNR, SSIM and max-abs-error for one image pair.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the shapes differ.
pub fn fidelity(reference: &Image, test: &Image) -> Result<FidelityReport, ImageError> {
    Ok(FidelityReport {
        psnr_db: psnr(reference, test)?,
        ssim: ssim(reference, test)?,
        max_abs_error: max_abs_error(reference, test)?,
    })
}

/// Computes a [`FidelityReport`] for a volume pair: the squared error is
/// pooled over all voxels before the PSNR log, SSIM is the mean of the
/// per-slice indices, and the L∞ error is the worst case across slices.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] if the stack shapes differ.
pub fn volume_fidelity(
    reference: &ImageStack,
    test: &ImageStack,
) -> Result<FidelityReport, ImageError> {
    if reference.width() != test.width()
        || reference.height() != test.height()
        || reference.depth() != test.depth()
    {
        return Err(ImageError::ShapeMismatch {
            left: (reference.width(), reference.height() * reference.depth()),
            right: (test.width(), test.height() * test.depth()),
        });
    }
    let mut sq_sum = 0.0;
    let mut ssim_sum = 0.0;
    let mut worst = 0i32;
    for z in 0..reference.depth() {
        let a = reference.slice_image(z)?;
        let b = test.slice_image(z)?;
        sq_sum += mse(&a, &b)? * a.pixel_count() as f64;
        ssim_sum += ssim(&a, &b)?;
        worst = worst.max(max_abs_error(&a, &b)?);
    }
    Ok(FidelityReport {
        psnr_db: psnr_from_mse(sq_sum / reference.voxel_count() as f64, reference.bit_depth()),
        ssim: ssim_sum / reference.depth() as f64,
        max_abs_error: worst,
    })
}

/// Rate and fidelity of one compressed item — a ratio-vs-PSNR table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Raw sample payload in bytes (samples × ceil(bit_depth / 8)).
    pub raw_bytes: u64,
    /// Compressed stream length in bytes.
    pub compressed_bytes: u64,
    /// `raw_bytes / compressed_bytes`.
    pub ratio: f64,
    /// Compressed bits per pixel (or voxel).
    pub bits_per_pixel: f64,
    /// Reconstruction fidelity.
    pub fidelity: FidelityReport,
}

/// Raw byte size of `samples` samples at `bit_depth` bits, using the
/// byte-aligned storage convention (1 byte up to 8 bits, 2 bytes up to 16).
#[must_use]
pub fn raw_bytes(samples: u64, bit_depth: u32) -> u64 {
    samples * u64::from(bit_depth.div_ceil(8))
}

/// Combines a stream length with a fidelity report into a table row.
/// `samples` is the pixel (or voxel) count of the original.
#[must_use]
pub fn compression(
    samples: u64,
    bit_depth: u32,
    compressed_bytes: u64,
    fidelity: FidelityReport,
) -> CompressionReport {
    let raw = raw_bytes(samples, bit_depth);
    CompressionReport {
        raw_bytes: raw,
        compressed_bytes,
        ratio: raw as f64 / compressed_bytes as f64,
        bits_per_pixel: compressed_bytes as f64 * 8.0 / samples as f64,
        fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::synth;

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = synth::ct_phantom(64, 48, 12, 1);
        assert_eq!(psnr(&img, &img).unwrap(), f64::INFINITY);
        assert_eq!(max_abs_error(&img, &img).unwrap(), 0);
    }

    #[test]
    fn psnr_uses_the_full_scale_peak() {
        // One pixel off by 1 in a 4x4 8-bit image: MSE = 1/16,
        // PSNR = 10 log10(255^2 * 16) ≈ 60.17 dB — a hand-computed golden.
        let a = synth::flat(4, 4, 8, 10);
        let mut samples = a.samples().to_vec();
        samples[0] = 11;
        let b = Image::from_samples(4, 4, 8, samples).unwrap();
        let expected = 10.0 * (255.0f64 * 255.0 * 16.0).log10();
        assert!((psnr(&a, &b).unwrap() - expected).abs() < 1e-9);
        // Same full-scale convention as the in-crate statistics helper.
        assert_eq!(lwc_image::stats::psnr(&a, &b).unwrap(), psnr(&a, &b).unwrap());
    }

    #[test]
    fn ssim_of_identical_images_is_one() {
        let img = synth::mr_slice(64, 64, 12, 9);
        assert!((ssim(&img, &img).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_matches_the_uniform_shift_closed_form() {
        // Flat image vs flat image shifted by c: every window has zero
        // variance, so SSIM = (2μ(μ+c) + C1) / (μ² + (μ+c)² + C1) exactly.
        let mu = 100.0f64;
        let c = 20.0f64;
        let a = synth::flat(16, 16, 8, 100);
        let b = synth::flat(16, 16, 8, 120);
        let c1 = (SSIM_K1 * 255.0).powi(2);
        let expected = (2.0 * mu * (mu + c) + c1) / (mu * mu + (mu + c) * (mu + c) + c1);
        assert!((ssim(&a, &b).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn ssim_is_symmetric_and_bounded_for_distorted_pairs() {
        let a = synth::ct_phantom(50, 37, 12, 3);
        let samples: Vec<i32> = a.samples().iter().map(|&v| (v + 3).min((1 << 12) - 1)).collect();
        let b = Image::from_samples(50, 37, 12, samples).unwrap();
        let ab = ssim(&a, &b).unwrap();
        let ba = ssim(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12, "symmetry");
        assert!(ab > -1.0 && ab < 1.0, "a mild distortion scores inside (-1, 1): {ab}");
        assert!(ab > 0.9, "a +3 shift on 12-bit data is barely visible: {ab}");
    }

    #[test]
    fn ssim_covers_non_multiple_dimensions() {
        // 13x11 forces edge-anchored tail windows in both axes.
        let img = synth::random_image(13, 11, 8, 4);
        assert!((ssim(&img, &img).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatches_are_errors_everywhere() {
        let a = synth::flat(8, 8, 8, 1);
        let b = synth::flat(8, 9, 8, 1);
        assert!(psnr(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
        assert!(max_abs_error(&a, &b).is_err());
        assert!(fidelity(&a, &b).is_err());
    }

    #[test]
    fn fidelity_report_flags_lossless() {
        let img = synth::ct_phantom(32, 32, 12, 2);
        let report = fidelity(&img, &img).unwrap();
        assert!(report.lossless());
        assert_eq!(report.psnr_db, f64::INFINITY);
        assert!((report.ssim - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume_fidelity_pools_error_and_takes_worst_linf() {
        let slices: Vec<Image> = (0..3).map(|z| synth::ct_phantom(24, 16, 12, z as u64)).collect();
        let reference = ImageStack::from_slices(&slices).unwrap();
        // Distort only slice 1, by +2 on one pixel.
        let mut distorted = slices.clone();
        let mut samples = distorted[1].samples().to_vec();
        samples[10] += 2;
        distorted[1] = Image::from_samples(24, 16, 12, samples).unwrap();
        let test = ImageStack::from_slices(&distorted).unwrap();
        let report = volume_fidelity(&reference, &test).unwrap();
        assert_eq!(report.max_abs_error, 2);
        // Pooled MSE: 4 / (24*16*3).
        let expected = psnr_from_mse(4.0 / (24.0 * 16.0 * 3.0), 12);
        assert!((report.psnr_db - expected).abs() < 1e-9);
        assert!(!report.lossless());
        // Identical stacks are lossless and infinite-PSNR.
        let same = volume_fidelity(&reference, &reference).unwrap();
        assert!(same.lossless());
        assert_eq!(same.psnr_db, f64::INFINITY);
    }

    #[test]
    fn compression_report_arithmetic() {
        let fid = FidelityReport { psnr_db: f64::INFINITY, ssim: 1.0, max_abs_error: 0 };
        // 512x512 at 12 bits: 2 bytes/sample raw.
        let report = compression(512 * 512, 12, 262_144, fid);
        assert_eq!(report.raw_bytes, 512 * 512 * 2);
        assert!((report.ratio - 2.0).abs() < 1e-12);
        assert!((report.bits_per_pixel - 8.0).abs() < 1e-12);
        assert_eq!(raw_bytes(100, 8), 100);
        assert_eq!(raw_bytes(100, 9), 200);
    }
}
