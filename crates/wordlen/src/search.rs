//! Empirical minimum-word-length search (ablation).
//!
//! The paper fixes the datapath at 32 bits; its companion reference \[16\]
//! studies how narrow the word can get before the lossless property breaks.
//! This module provides the search harness: given a caller-supplied oracle
//! that runs the actual fixed-point round trip at a candidate word length and
//! reports whether it was bit exact, it finds the smallest lossless word.
//!
//! The oracle lives with the caller (usually `lwc-dwt` or an example binary)
//! to keep the dependency graph acyclic.

use crate::{PlanError, WordLengthPlan};
use lwc_filters::FilterBank;

/// Outcome of probing one candidate word length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The round trip was bit exact at this word length.
    Lossless,
    /// The round trip produced at least one pixel error.
    Lossy,
    /// The plan could not even be built (integer part exceeds the word).
    Infeasible,
}

/// Result of a minimum-word-length search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// The smallest word length for which the oracle reported `Lossless`,
    /// if any candidate in the range succeeded.
    pub minimum_lossless_bits: Option<u32>,
    /// The probed word lengths and their outcomes, in ascending order.
    pub probes: Vec<(u32, Probe)>,
}

/// Probes every word length in `range` (ascending) with `oracle` and returns
/// the smallest one that is lossless.
///
/// `oracle` receives the word length and the plan built for it; it should run
/// the fixed-point forward + inverse transform and return `true` when the
/// reconstruction is bit exact.
pub fn minimum_word_length<F>(
    bank: &FilterBank,
    scales: u32,
    input_bits: u32,
    range: std::ops::RangeInclusive<u32>,
    mut oracle: F,
) -> SearchResult
where
    F: FnMut(u32, &WordLengthPlan) -> bool,
{
    let mut probes = Vec::new();
    let mut minimum_lossless_bits = None;
    for word_bits in range {
        let probe = match WordLengthPlan::new(bank, word_bits, word_bits, input_bits, scales) {
            Ok(plan) => {
                if oracle(word_bits, &plan) {
                    if minimum_lossless_bits.is_none() {
                        minimum_lossless_bits = Some(word_bits);
                    }
                    Probe::Lossless
                } else {
                    Probe::Lossy
                }
            }
            Err(PlanError::WordTooNarrow { .. }) => Probe::Infeasible,
            Err(_) => Probe::Infeasible,
        };
        probes.push((word_bits, probe));
    }
    SearchResult { minimum_lossless_bits, probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;

    #[test]
    fn finds_the_threshold_of_a_synthetic_oracle() {
        // Pretend the transform becomes lossless from 28 bits on.
        let bank = FilterBank::table1(FilterId::F1);
        let result = minimum_word_length(&bank, 6, 13, 20..=32, |bits, _plan| bits >= 28);
        assert_eq!(result.minimum_lossless_bits, Some(28));
        assert_eq!(result.probes.len(), 13);
        assert!(result.probes.iter().any(|&(b, p)| b == 27 && p == Probe::Lossy));
        assert!(result.probes.iter().any(|&(b, p)| b == 30 && p == Probe::Lossless));
    }

    #[test]
    fn infeasible_words_are_reported() {
        // F6 needs 29 integer bits at scale 6, so words below 29 bits cannot
        // even represent the integer part.
        let bank = FilterBank::table1(FilterId::F6);
        let result = minimum_word_length(&bank, 6, 13, 24..=30, |_bits, _plan| true);
        assert!(result
            .probes
            .iter()
            .take_while(|&&(b, _)| b < 29)
            .all(|&(_, p)| p == Probe::Infeasible));
        assert_eq!(result.minimum_lossless_bits, Some(29));
    }

    #[test]
    fn reports_none_when_nothing_succeeds() {
        let bank = FilterBank::table1(FilterId::F4);
        let result = minimum_word_length(&bank, 6, 13, 27..=32, |_b, _p| false);
        assert_eq!(result.minimum_lossless_bits, None);
        assert!(result.probes.iter().all(|&(_, p)| p == Probe::Lossy));
    }

    #[test]
    fn oracle_receives_consistent_plans() {
        let bank = FilterBank::table1(FilterId::F2);
        minimum_word_length(&bank, 4, 13, 30..=32, |bits, plan| {
            assert_eq!(plan.word_bits(), bits);
            assert_eq!(plan.scales(), 4);
            true
        });
    }
}
