//! Per-scale fixed-point format plan consumed by the DWT datapath.

use crate::integer_bits;
use lwc_filters::{FilterBank, FilterId, QuantizedBank};
use lwc_fixed::{FixedError, QFormat};
use std::error::Error;
use std::fmt;

/// Errors produced while building a [`WordLengthPlan`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The required integer part at some scale exceeds the datapath word.
    WordTooNarrow {
        /// Scale at which the word overflows.
        scale: u32,
        /// Integer bits required at that scale.
        required_int_bits: u32,
        /// Datapath word length.
        word_bits: u32,
    },
    /// Zero scales requested.
    NoScales,
    /// An underlying fixed-point format could not be built.
    Format(FixedError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::WordTooNarrow { scale, required_int_bits, word_bits } => write!(
                f,
                "scale {scale} needs {required_int_bits} integer bits but the word is only {word_bits} bits wide"
            ),
            PlanError::NoScales => write!(f, "a word-length plan needs at least one scale"),
            PlanError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixedError> for PlanError {
    fn from(e: FixedError) -> Self {
        PlanError::Format(e)
    }
}

/// The complete fixed-point configuration of the paper's datapath for one
/// filter bank and decomposition depth:
///
/// * input format (13 integer bits by default),
/// * per-scale intermediate formats with the Table II integer parts,
/// * coefficient format (Q2.30 inside a 32-bit word by default),
/// * the alignment shifts the rounding unit applies between scales.
///
/// ```
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_wordlen::WordLengthPlan;
///
/// # fn main() -> Result<(), lwc_wordlen::PlanError> {
/// let bank = FilterBank::table1(FilterId::F1);
/// let plan = WordLengthPlan::paper_default(&bank, 6)?;
/// assert_eq!(plan.format_for_scale(0)?.int_bits(), 13); // the input image
/// assert_eq!(plan.format_for_scale(6)?.int_bits(), 25); // Table II, F1, s=6
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WordLengthPlan {
    filter: FilterId,
    word_bits: u32,
    input_bits: u32,
    scales: u32,
    coeff_format: QFormat,
    scale_int_bits: Vec<u32>,
}

impl WordLengthPlan {
    /// Builds the plan the paper uses: 32-bit datapath words, 32-bit
    /// coefficients, 13-bit inputs.
    ///
    /// # Errors
    ///
    /// See [`WordLengthPlan::new`].
    pub fn paper_default(bank: &FilterBank, scales: u32) -> Result<Self, PlanError> {
        Self::new(
            bank,
            lwc_fixed::DATAPATH_WORD_BITS,
            lwc_fixed::COEFFICIENT_BITS,
            lwc_fixed::INPUT_IMAGE_BITS,
            scales,
        )
    }

    /// Builds a plan with explicit word lengths.
    ///
    /// # Errors
    ///
    /// * [`PlanError::NoScales`] if `scales` is zero.
    /// * [`PlanError::WordTooNarrow`] if some scale's Table II integer part
    ///   does not fit `word_bits`.
    /// * [`PlanError::Format`] if a fixed-point format cannot be built.
    pub fn new(
        bank: &FilterBank,
        word_bits: u32,
        coeff_bits: u32,
        input_bits: u32,
        scales: u32,
    ) -> Result<Self, PlanError> {
        if scales == 0 {
            return Err(PlanError::NoScales);
        }
        let coeff_format = QFormat::new(coeff_bits, QuantizedBank::COEFF_INT_BITS)?;
        let mut scale_int_bits = Vec::with_capacity(scales as usize + 1);
        scale_int_bits.push(input_bits);
        for s in 1..=scales {
            let required = integer_bits::minimum_integer_bits(bank, input_bits, s);
            if required > word_bits {
                return Err(PlanError::WordTooNarrow {
                    scale: s,
                    required_int_bits: required,
                    word_bits,
                });
            }
            scale_int_bits.push(required);
        }
        // Validate that every per-scale format is constructible.
        for &bits in &scale_int_bits {
            QFormat::new(word_bits, bits)?;
        }
        Ok(Self { filter: bank.id(), word_bits, input_bits, scales, coeff_format, scale_int_bits })
    }

    /// The filter bank this plan was derived for.
    #[must_use]
    pub fn filter(&self) -> FilterId {
        self.filter
    }

    /// Datapath word length in bits.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Input image word length (integer bits, sign included).
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Number of decomposition scales the plan covers.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// The fixed-point format of the filter coefficients.
    #[must_use]
    pub fn coeff_format(&self) -> QFormat {
        self.coeff_format
    }

    /// Integer bits used at scale `s` (`s = 0` is the input image).
    ///
    /// # Panics
    ///
    /// Panics if `s > scales`.
    #[must_use]
    pub fn int_bits_for_scale(&self, s: u32) -> u32 {
        self.scale_int_bits[s as usize]
    }

    /// The data format at scale `s` (`s = 0` is the input image).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Format`] only if the plan was built with
    /// inconsistent parameters (never for plans returned by the
    /// constructors); callers may treat the error as unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `s > scales`.
    pub fn format_for_scale(&self, s: u32) -> Result<QFormat, PlanError> {
        assert!(s <= self.scales, "scale {s} outside plan (max {})", self.scales);
        Ok(QFormat::new(self.word_bits, self.scale_int_bits[s as usize])?)
    }

    /// Fractional bits at scale `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s > scales`.
    #[must_use]
    pub fn frac_bits_for_scale(&self, s: u32) -> u32 {
        self.word_bits - self.scale_int_bits[s as usize]
    }

    /// The number of bits the alignment unit discards when a MAC result
    /// computed **from** scale-`from` data is stored **at** scale-`to`
    /// format: the accumulator holds `coeff_frac + frac(from)` fractional
    /// bits and the destination keeps `frac(to)`.
    ///
    /// # Panics
    ///
    /// Panics if either scale is outside the plan or if the destination
    /// would require *more* fractional bits than the accumulator holds
    /// (cannot happen for Table II plans).
    #[must_use]
    pub fn alignment_shift(&self, from: u32, to: u32) -> u32 {
        let acc_frac = self.coeff_format.frac_bits() + self.frac_bits_for_scale(from);
        let out_frac = self.frac_bits_for_scale(to);
        assert!(
            out_frac <= acc_frac,
            "destination format has more fractional bits than the accumulator"
        );
        acc_frac - out_frac
    }

    /// Per-scale integer bit widths, index 0 being the input image.
    #[must_use]
    pub fn int_bits_table(&self) -> &[u32] {
        &self.scale_int_bits
    }
}

impl fmt::Display for WordLengthPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}-bit word, coeff {}, int bits {:?}",
            self.filter, self.word_bits, self.coeff_format, self.scale_int_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integer_bits::TABLE2_PAPER;

    #[test]
    fn paper_default_reproduces_table2_per_filter() {
        for (id, row) in FilterId::ALL.iter().zip(TABLE2_PAPER.iter()) {
            let bank = FilterBank::table1(*id);
            let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
            assert_eq!(plan.int_bits_for_scale(0), 13);
            for s in 1..=6u32 {
                assert_eq!(plan.int_bits_for_scale(s), row[(s - 1) as usize], "{id} scale {s}");
            }
        }
    }

    #[test]
    fn formats_partition_the_32_bit_word() {
        let bank = FilterBank::table1(FilterId::F6);
        let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
        for s in 0..=6 {
            let fmt = plan.format_for_scale(s).unwrap();
            assert_eq!(fmt.total_bits(), 32);
            assert_eq!(fmt.int_bits() + fmt.frac_bits(), 32);
            assert_eq!(plan.frac_bits_for_scale(s), fmt.frac_bits());
        }
    }

    #[test]
    fn narrow_words_are_rejected_at_the_right_scale() {
        // F6 needs 29 integer bits at scale 6; a 24-bit word fails earlier.
        let bank = FilterBank::table1(FilterId::F6);
        let err = WordLengthPlan::new(&bank, 24, 32, 13, 6).unwrap_err();
        match err {
            PlanError::WordTooNarrow { scale, required_int_bits, word_bits } => {
                assert_eq!(word_bits, 24);
                assert!(required_int_bits > 24);
                assert!(scale >= 4, "F6 needs 24 bits only from scale 4 on, got scale {scale}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_scales_is_an_error() {
        let bank = FilterBank::table1(FilterId::F1);
        assert!(matches!(WordLengthPlan::paper_default(&bank, 0), Err(PlanError::NoScales)));
    }

    #[test]
    fn alignment_shift_accounts_for_integer_growth() {
        let bank = FilterBank::table1(FilterId::F1);
        let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
        // Forward, scale 0 -> 1: accumulator has 30 + 19 fractional bits,
        // destination keeps 32 - 15 = 17, so 32 bits are dropped.
        assert_eq!(plan.alignment_shift(0, 1), 30 + (32 - 13) - (32 - 15));
        // Inverse, scale 1 -> 0 drops fewer bits because precision widens.
        assert!(plan.alignment_shift(1, 0) < plan.alignment_shift(0, 1));
        // Same-scale passes (row pass storing at the same scale) are valid.
        assert_eq!(plan.alignment_shift(1, 1), 30);
    }

    #[test]
    fn display_reports_the_filter_and_widths() {
        let bank = FilterBank::table1(FilterId::F4);
        let plan = WordLengthPlan::paper_default(&bank, 3).unwrap();
        let s = plan.to_string();
        assert!(s.contains("F4"));
        assert!(s.contains("32-bit"));
    }

    #[test]
    fn plan_error_display_and_source() {
        let e = PlanError::WordTooNarrow { scale: 5, required_int_bits: 26, word_bits: 24 };
        assert!(e.to_string().contains("scale 5"));
        assert!(Error::source(&e).is_none());
        let e = PlanError::from(FixedError::NonFinite);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn sixteen_bit_inputs_still_fit_32_bit_words_except_f6() {
        // With 16-bit inputs F6 needs 32 integer bits at scale 6 — exactly
        // the word width — while F4 needs 30.
        let f6 = FilterBank::table1(FilterId::F6);
        let plan = WordLengthPlan::new(&f6, 32, 32, 16, 6).unwrap();
        assert_eq!(plan.int_bits_for_scale(6), 32);
        assert_eq!(plan.frac_bits_for_scale(6), 0);
    }
}
