//! Dynamic-range growth of the subbands with the decomposition scale.
//!
//! For each scale the 2-D filtering multiplies the worst-case magnitude by at
//! most `Σ|h|·Σ|f|` where `h` and `f` are the row and column filters applied
//! to that subband. Only the `HH` (low-pass/low-pass) subband feeds the next
//! scale, so the recursion is:
//!
//! * magnitude of the approximation after `s-1` scales grows by
//!   `(Σ|h|)^(2(s-1))`,
//! * the four subbands produced at scale `s` grow by at most another
//!   `max(Σ|h|, Σ|g|)²`.
//!
//! Section 3 of the paper quotes the `(Σ|c_n|)²` bound; combining it per
//! subband as above reproduces Table II exactly (see
//! [`integer_bits`](crate::integer_bits)).

use lwc_filters::{BankMetrics, FilterBank};

/// Worst-case magnitude growth factors of a filter bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthModel {
    /// `Σ|h[n]|` of the analysis low-pass filter.
    pub lowpass_abs_sum: f64,
    /// `Σ|g[n]|` of the analysis high-pass filter.
    pub highpass_abs_sum: f64,
}

impl GrowthModel {
    /// Builds the growth model of `bank`.
    #[must_use]
    pub fn of(bank: &FilterBank) -> Self {
        let m = BankMetrics::of(bank);
        Self {
            lowpass_abs_sum: m.analysis_lowpass_abs_sum,
            highpass_abs_sum: m.analysis_highpass_abs_sum,
        }
    }

    /// Growth factor of the approximation (`HH` in the paper's notation)
    /// after `scales` complete 2-D scales.
    #[must_use]
    pub fn approximation_growth(&self, scales: u32) -> f64 {
        self.lowpass_abs_sum.powi(2 * scales as i32)
    }

    /// Worst-case growth factor over the four subbands produced at scale `s`
    /// (1-based), relative to the original image.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero (scales are 1-based, as in the paper).
    #[must_use]
    pub fn subband_growth(&self, s: u32) -> f64 {
        assert!(s >= 1, "scales are 1-based");
        let worst_1d = self.lowpass_abs_sum.max(self.highpass_abs_sum);
        self.approximation_growth(s - 1) * worst_1d * worst_1d
    }

    /// Bits of magnitude growth at scale `s`: `log2(subband_growth(s))`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    #[must_use]
    pub fn growth_bits(&self, s: u32) -> f64 {
        self.subband_growth(s).log2()
    }

    /// Upper bound on the absolute value of any coefficient at scale `s`
    /// when the input samples are bounded by `input_peak`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    #[must_use]
    pub fn magnitude_bound(&self, input_peak: f64, s: u32) -> f64 {
        input_peak * self.subband_growth(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;

    #[test]
    fn growth_is_monotonic_in_scale() {
        for id in FilterId::ALL {
            let g = GrowthModel::of(&FilterBank::table1(id));
            for s in 1..6 {
                assert!(g.subband_growth(s + 1) > g.subband_growth(s), "{id} scale {s}");
            }
        }
    }

    #[test]
    fn first_scale_growth_matches_2d_bound() {
        let bank = FilterBank::table1(FilterId::F1);
        let g = GrowthModel::of(&bank);
        // At the first scale the approximation has not grown yet, so the
        // subband bound is exactly the (Σ|c|)² bound of Section 3.
        let expected = bank.analysis_growth_bound();
        assert!((g.subband_growth(1) - expected).abs() < 1e-12);
    }

    #[test]
    fn haar_analysis_bank_grows_most_slowly() {
        // F5's analysis low-pass is the 2-tap Haar filter with Σ|h| = √2 —
        // the smallest possible for a √2-normalized filter — so its
        // approximation growth is the slowest of the six banks.
        let f5 = GrowthModel::of(&FilterBank::table1(FilterId::F5));
        for id in FilterId::ALL {
            if id == FilterId::F5 {
                continue;
            }
            let other = GrowthModel::of(&FilterBank::table1(id));
            assert!(f5.approximation_growth(6) <= other.approximation_growth(6) + 1e-9, "{id}");
        }
    }

    #[test]
    fn magnitude_bound_scales_with_input_peak() {
        let g = GrowthModel::of(&FilterBank::table1(FilterId::F4));
        let b1 = g.magnitude_bound(4096.0, 3);
        let b2 = g.magnitude_bound(8192.0, 3);
        assert!((b2 / b1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn scale_zero_is_rejected() {
        let g = GrowthModel::of(&FilterBank::table1(FilterId::F1));
        let _ = g.subband_growth(0);
    }

    #[test]
    fn growth_bits_are_about_two_per_scale() {
        let g = GrowthModel::of(&FilterBank::table1(FilterId::F1));
        // F1 grows by ~1.93 bits per scale (2·log2(1.952105)).
        let per_scale = g.growth_bits(2) - g.growth_bits(1);
        assert!((per_scale - 2.0 * 1.952105f64.log2()).abs() < 1e-9);
    }
}
