//! # lwc-wordlen — word-length analysis for lossless DWT computation
//!
//! Section 3 of the paper chooses the fixed-point formats that make the
//! forward + inverse DWT bit-exact on 13-bit medical images:
//!
//! * the dynamic range of the subbands grows with the scale, bounded per
//!   2-D scale by `(Σ|c_n|)²` ([`growth`]),
//! * therefore the **integer part** of the 32-bit intermediate word must grow
//!   with the scale; Table II lists the minimum integer bits `b_int(s)` per
//!   filter and scale ([`integer_bits`], reproduced exactly),
//! * the resulting per-scale formats are bundled into a [`WordLengthPlan`]
//!   that the fixed-point DWT and the architecture simulator consume,
//! * [`error_budget`] bounds the accumulated rounding error and
//!   [`search`] finds the smallest datapath word empirically (an ablation the
//!   companion paper \[16\] explores).
//!
//! ```
//! use lwc_filters::{FilterBank, FilterId};
//! use lwc_wordlen::integer_bits;
//!
//! let bank = FilterBank::table1(FilterId::F1);
//! // Table II, row F1: 15 17 19 21 23 25
//! let bits = integer_bits::table2_row(&bank, 13, 6);
//! assert_eq!(bits, vec![15, 17, 19, 21, 23, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error_budget;
pub mod growth;
pub mod integer_bits;
mod plan;
pub mod search;

pub use plan::{PlanError, WordLengthPlan};

#[cfg(test)]
mod crate_tests {
    use super::*;
    use lwc_filters::{FilterBank, FilterId};

    #[test]
    fn plan_is_constructible_for_paper_configuration() {
        let bank = FilterBank::table1(FilterId::F2);
        let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
        assert_eq!(plan.word_bits(), 32);
        assert_eq!(plan.scales(), 6);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WordLengthPlan>();
        assert_send_sync::<PlanError>();
    }
}
