//! Minimum integer-part width per scale — Table II of the paper.
//!
//! The forward DWT grows the subband magnitudes (see
//! [`growth`](crate::growth)); to avoid overflow, the integer part of the
//! fixed-point intermediate word must widen with the scale. For an input word
//! of `b_in` integer bits (sign included), the minimum integer part at scale
//! `s` is
//!
//! ```text
//! b_int(s) = b_in + ceil( 2·(s-1)·log2(Σ|h|) + 2·log2(max(Σ|h|, Σ|g|)) )
//! ```
//!
//! which reproduces Table II of the paper (reference \[16\] carries the full
//! derivation) for all six filter banks and all six scales.

use crate::growth::GrowthModel;
use lwc_filters::{FilterBank, FilterId};

/// Table II exactly as printed in the paper: minimum integer part `b_int(s)`
/// for input images of 13 bits (12-bit magnitude + sign), filters F1…F6
/// (rows) and scales 1…6 (columns).
pub const TABLE2_PAPER: [[u32; 6]; 6] = [
    [15, 17, 19, 21, 23, 25], // F1
    [16, 17, 19, 21, 23, 25], // F2
    [15, 17, 19, 21, 23, 25], // F3
    [16, 18, 20, 22, 24, 27], // F4
    [15, 16, 17, 18, 19, 20], // F5
    [16, 19, 21, 24, 26, 29], // F6
];

/// Input word length (bits, sign included) Table II assumes.
pub const TABLE2_INPUT_BITS: u32 = 13;

/// Minimum integer-part width (bits, sign included) needed at scale `s`
/// (1-based) so the subbands produced at that scale cannot overflow, for an
/// input of `input_bits` integer bits.
///
/// # Panics
///
/// Panics if `s` is zero.
#[must_use]
pub fn minimum_integer_bits(bank: &FilterBank, input_bits: u32, s: u32) -> u32 {
    assert!(s >= 1, "scales are 1-based");
    let growth = GrowthModel::of(bank);
    let extra_bits = growth.growth_bits(s);
    input_bits + extra_bits.ceil() as u32
}

/// The whole Table II row for a bank: `b_int(s)` for `s = 1..=scales`.
#[must_use]
pub fn table2_row(bank: &FilterBank, input_bits: u32, scales: u32) -> Vec<u32> {
    (1..=scales).map(|s| minimum_integer_bits(bank, input_bits, s)).collect()
}

/// Regenerates the full Table II (all six banks, `scales` columns) for the
/// paper's 13-bit input.
#[must_use]
pub fn table2(scales: u32) -> Vec<(FilterId, Vec<u32>)> {
    FilterId::ALL
        .iter()
        .map(|&id| (id, table2_row(&FilterBank::table1(id), TABLE2_INPUT_BITS, scales)))
        .collect()
}

/// Integer-part widths for the *inverse* transform: thanks to the perfect
/// reconstruction property the dynamic range shrinks back as the scales are
/// undone, so the same per-scale widths are sufficient, traversed from the
/// deepest scale down to the input format.
#[must_use]
pub fn idwt_integer_bits(bank: &FilterBank, input_bits: u32, scales: u32) -> Vec<u32> {
    let mut bits = table2_row(bank, input_bits, scales);
    bits.reverse();
    bits.push(input_bits);
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_exactly() {
        for (row, id) in TABLE2_PAPER.iter().zip(FilterId::ALL) {
            let bank = FilterBank::table1(id);
            let computed = table2_row(&bank, TABLE2_INPUT_BITS, 6);
            assert_eq!(&computed[..], &row[..], "Table II row for {id}");
        }
    }

    #[test]
    fn table2_helper_covers_all_banks() {
        let t = table2(6);
        assert_eq!(t.len(), 6);
        for ((id, row), paper_row) in t.iter().zip(TABLE2_PAPER.iter()) {
            assert_eq!(&row[..], &paper_row[..], "{id}");
        }
    }

    #[test]
    fn integer_bits_grow_monotonically() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let row = table2_row(&bank, 13, 8);
            for w in row.windows(2) {
                assert!(w[1] >= w[0], "{id}: {row:?}");
            }
        }
    }

    #[test]
    fn wider_inputs_shift_the_table_up() {
        let bank = FilterBank::table1(FilterId::F1);
        let b13 = table2_row(&bank, 13, 6);
        let b16 = table2_row(&bank, 16, 6);
        for (a, b) in b13.iter().zip(&b16) {
            assert_eq!(b - a, 3);
        }
    }

    #[test]
    fn first_scale_needs_two_to_three_extra_bits() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let b = minimum_integer_bits(&bank, 13, 1);
            assert!((15..=16).contains(&b), "{id}: {b}");
        }
    }

    #[test]
    fn idwt_bits_mirror_the_forward_plan() {
        let bank = FilterBank::table1(FilterId::F2);
        let idwt = idwt_integer_bits(&bank, 13, 6);
        assert_eq!(idwt.len(), 7);
        assert_eq!(idwt[0], 25, "starts at the deepest scale");
        assert_eq!(*idwt.last().unwrap(), 13, "ends at the input format");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn scale_zero_is_rejected() {
        let bank = FilterBank::table1(FilterId::F1);
        let _ = minimum_integer_bits(&bank, 13, 0);
    }
}
