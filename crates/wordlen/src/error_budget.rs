//! Statistical rounding-error budget for the lossless criterion.
//!
//! Every pass through the alignment/rounding unit perturbs a value by at most
//! half an LSB of the destination format. The reconstruction is bit exact as
//! long as the error accumulated over the forward and inverse transforms
//! stays below half an LSB of the *input* format (±0.5 of an integer pixel),
//! so that the final rounding snaps back to the original value.
//!
//! A strict worst-case bound (all rounding errors aligned, amplified by the
//! worst-case synthesis gain at every stage) is hopelessly pessimistic — it
//! exceeds ±0.5 even for configurations the paper demonstrates to be
//! lossless. The paper and its companion reference \[16\] therefore argue
//! statistically and confirm by simulation. This module provides the same
//! kind of statistical estimate: rounding errors are modelled as independent,
//! uniform in ±½ LSB, propagated through a filter bank whose ℓ² gain is
//! close to one (the Table I banks are near-orthonormal), and reported as a
//! three-sigma excursion. [`ErrorBudget::predicts_lossless`] is a *prediction*
//! to be confirmed by the exact fixed-point round-trip tests in `lwc-dwt`,
//! not a proof.

use crate::WordLengthPlan;
use lwc_filters::FilterBank;

/// Statistical estimate of the reconstruction error (in input LSBs) after a
/// forward + inverse transform with a given plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Root-mean-square reconstruction error estimate, in input-image LSBs.
    pub rms_error: f64,
    /// Three-sigma excursion of the reconstruction error.
    pub three_sigma: f64,
    /// Deterministic contribution of coefficient quantization.
    pub coefficient_error: f64,
}

impl ErrorBudget {
    /// Estimated worst practical excursion: three sigma plus the
    /// deterministic coefficient-quantization part.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.three_sigma + self.coefficient_error
    }

    /// Whether the estimate predicts a bit-exact round trip
    /// (total below 0.5 input LSBs).
    #[must_use]
    pub fn predicts_lossless(&self) -> bool {
        self.total() < 0.5
    }
}

/// Estimates the round-trip error of `plan` applied to `bank` on images whose
/// samples are bounded by `input_peak` (4095 for 12-bit data).
///
/// The model charges, per scale and per transform direction, `2·L`
/// independent uniform(±½ LSB) roundings per reconstructed pixel (row and
/// column pass, `L` taps each), carried back to the pixel domain with unit
/// ℓ² gain, plus the deterministic coefficient-quantization error
/// `2·L·2^-frac(coeff)·input_peak`.
#[must_use]
pub fn error_budget(bank: &FilterBank, plan: &WordLengthPlan, input_peak: f64) -> ErrorBudget {
    let taps = bank.max_len() as f64;
    let mut variance = 0.0;
    for s in 1..=plan.scales() {
        let lsb_s = (plan.frac_bits_for_scale(s) as f64).exp2().recip();
        let lsb_prev = (plan.frac_bits_for_scale(s - 1) as f64).exp2().recip();
        // Forward: the coefficients stored at scale s carry two roundings
        // (row + column pass) in the scale-s format.
        variance += 2.0 * taps * lsb_s * lsb_s / 12.0;
        // Inverse: reconstructing scale s-1 data rounds again in the
        // scale-(s-1) format.
        variance += 2.0 * taps * lsb_prev * lsb_prev / 12.0;
    }
    let rms_error = variance.sqrt();
    let coeff_lsb = (plan.coeff_format().frac_bits() as f64).exp2().recip();
    let coefficient_error = 2.0 * taps * coeff_lsb * input_peak;
    ErrorBudget { rms_error, three_sigma: 3.0 * rms_error, coefficient_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;

    #[test]
    fn paper_configuration_predicts_lossless() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
            let budget = error_budget(&bank, &plan, 4095.0);
            assert!(
                budget.predicts_lossless(),
                "{id}: estimate {} should be below 0.5 input LSBs",
                budget.total()
            );
        }
    }

    #[test]
    fn narrow_datapaths_do_not_predict_lossless() {
        // With a 21-bit datapath the deepest F5 scale keeps a single
        // fractional bit, so the estimate blows past 0.5 input LSBs.
        let bank = FilterBank::table1(FilterId::F5);
        let plan = WordLengthPlan::new(&bank, 21, 32, 13, 6)
            .expect("the F5 plan with 21-bit words is constructible");
        let budget = error_budget(&bank, &plan, 4095.0);
        assert!(
            !budget.predicts_lossless(),
            "narrow datapath should not predict lossless, estimate {}",
            budget.total()
        );
    }

    #[test]
    fn budget_grows_with_scales() {
        let bank = FilterBank::table1(FilterId::F1);
        let plan3 = WordLengthPlan::paper_default(&bank, 3).unwrap();
        let plan6 = WordLengthPlan::paper_default(&bank, 6).unwrap();
        assert!(
            error_budget(&bank, &plan6, 4095.0).total()
                > error_budget(&bank, &plan3, 4095.0).total()
        );
    }

    #[test]
    fn components_are_positive_and_consistent() {
        let bank = FilterBank::table1(FilterId::F2);
        let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
        let b = error_budget(&bank, &plan, 4095.0);
        assert!(b.rms_error > 0.0);
        assert!((b.three_sigma - 3.0 * b.rms_error).abs() < 1e-15);
        assert!(b.coefficient_error > 0.0);
        assert!(b.total() >= b.three_sigma);
    }

    #[test]
    fn coefficient_error_scales_with_peak() {
        let bank = FilterBank::table1(FilterId::F3);
        let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
        let b12 = error_budget(&bank, &plan, 4095.0);
        let b8 = error_budget(&bank, &plan, 255.0);
        assert!(b12.coefficient_error > b8.coefficient_error);
        assert_eq!(b12.rms_error, b8.rms_error);
    }
}
