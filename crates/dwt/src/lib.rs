//! # lwc-dwt — the 2-D discrete wavelet transform (floating point and
//! fixed point)
//!
//! This crate implements the algorithmic core of the paper: Mallat's pyramid
//! decomposition (Fig. 1) computed with the Table I quadrature-mirror filter
//! banks, in two arithmetic flavours:
//!
//! * [`Dwt2d`] — a double-precision reference implementation used to validate
//!   the filter banks and as the "software implementation" the paper checks
//!   its hardware against,
//! * [`FixedDwt2d`] — the bit-exact model of the paper's datapath:
//!   32-bit fixed-point words whose integer part follows Table II
//!   (via [`lwc_wordlen::WordLengthPlan`]), 64-bit accumulation, and the
//!   alignment/round-half-up unit of Section 4.3. The architecture simulator
//!   in `lwc-arch` reproduces this arithmetic cycle by cycle and is checked
//!   against it.
//!
//! Border handling uses the paper's *"so called circular convolution"*: the
//! image is extended periodically along rows and columns (Section 4.1).
//!
//! The decomposition is stored in the usual Mallat layout (approximation in
//! the top-left corner) inside a single image-sized buffer — exactly like the
//! hardware, which keeps one image-sized DRAM for initial, intermediate and
//! final results.
//!
//! ```
//! use lwc_dwt::{Dwt2d, FixedDwt2d};
//! use lwc_filters::{FilterBank, FilterId};
//! use lwc_image::synth;
//!
//! # fn main() -> Result<(), lwc_dwt::DwtError> {
//! let image = synth::ct_phantom(64, 64, 12, 1);
//! let bank = FilterBank::table1(FilterId::F4);
//!
//! // Floating-point reference round trip.
//! let dwt = Dwt2d::new(bank.clone(), 3)?;
//! let decomposition = dwt.forward(&image)?;
//! let restored = dwt.inverse(&decomposition)?;
//! assert!(lwc_image::stats::max_abs_diff(&image, &restored)? == 0);
//!
//! // Fixed-point (hardware) round trip — the lossless claim of the paper.
//! let hw = FixedDwt2d::paper_default(&bank, 3)?;
//! let coeffs = hw.forward(&image)?;
//! let restored = hw.inverse(&coeffs)?;
//! assert!(lwc_image::stats::bit_exact(&image, &restored)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dwt1d;
mod error;
mod fixed1d;
mod fixed2d;
mod line;
pub mod lossless;
mod subbands;
mod transform2d;

pub use dwt1d::{analyze_periodic, synthesize_periodic};
pub use error::DwtError;
pub use fixed1d::{analyze_periodic_fixed, synthesize_periodic_fixed, FixedStep};
pub use fixed2d::FixedDwt2d;
pub use line::{FixedCoeffRow, LineFixedDwt};
pub use subbands::{Decomposition, Subband, SubbandRect};
pub use transform2d::Dwt2d;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Dwt2d>();
        assert_send_sync::<FixedDwt2d>();
        assert_send_sync::<Decomposition<f64>>();
        assert_send_sync::<Decomposition<i64>>();
        assert_send_sync::<DwtError>();
    }
}
