//! One-dimensional analysis/synthesis in the paper's fixed-point arithmetic.
//!
//! Every output sample is produced exactly the way the hardware datapath
//! produces it (Sections 4.2 and 4.3):
//!
//! 1. multiply–accumulate the quantized coefficients against the raw
//!    fixed-point samples in a 64-bit accumulator,
//! 2. align the accumulator to the destination scale's format (the integer
//!    part grows with the scale, Table II),
//! 3. round: truncate, and add one if the most significant discarded bit
//!    was set.
//!
//! The [`FixedStep`] value captures the formats involved in one pass so the
//! 2-D driver and the cycle-accurate architecture model use identical
//! arithmetic.
//!
//! # Interior fast path and the accumulator bound
//!
//! The periodic boundary only matters for the first and last `L/2` outputs of
//! a pass; every other output reads a contiguous window of the signal. The
//! inner loops therefore split each pass into an **interior fast path** —
//! direct slice indexing, plain 64-bit multiply–add — and a boundary slow
//! path that keeps the original `rem_euclid` wrap and per-tap checked
//! arithmetic. The *analysis* interior consumes its dot products through the
//! chunked multi-lane [`lwc_fixed::MacAccumulator::mac_slice`] kernel
//! (fixed-width independent lanes, no per-tap branching, written so the
//! compiler autovectorizes); the *synthesis* interior is a scatter-accumulate
//! (each input contributes to a window of outputs rather than the reverse),
//! so it stays a plain contiguous multiply–add loop — already
//! dependency-free across taps — instead of a dot product.
//!
//! Dropping the per-tap `checked_mul`/`checked_add` in the interior is
//! justified by a worst-case bound evaluated **once per pass** instead of
//! once per tap: every partial sum of a dot product is bounded in magnitude
//! by `L1(kernel) * max|x|`, where `L1(kernel)` is the sum of absolute raw
//! coefficient words and `max|x|` the largest absolute sample of the pass's
//! input. For the paper's configuration — Q2.30 coefficients whose real L1
//! norm stays below 3.0 for every Table I bank (`L1 < 3 * 2^30` raw) against
//! 32-bit samples (`max|x| < 2^31`) — the bound is below `3 * 2^61`, inside
//! the 64-bit accumulator with a bit to spare;
//! [`lwc_fixed::dot_product_fits_i64`] performs the exact check with the
//! actual kernel and data, and any pass whose inputs exceed the bound
//! (impossible under a valid word-length plan) falls back to the fully
//! checked path, preserving the original error behaviour bit for bit. This
//! mirrors the paper's own design flow: the 64-bit MAC width is *proved*
//! sufficient by the word-length analysis (Table II), not checked in the
//! datapath.

use crate::DwtError;
use lwc_filters::QuantizedKernel;
use lwc_fixed::{align_and_round_checked, dot_product_fits_i64, MacAccumulator};

/// Fixed-point formats of one 1-D pass: input samples, output samples and
/// coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedStep {
    /// Fractional bits of the input samples.
    pub in_frac_bits: u32,
    /// Fractional bits of the stored output samples.
    pub out_frac_bits: u32,
    /// Fractional bits of the filter coefficients.
    pub coeff_frac_bits: u32,
    /// Word length the rounded output must fit (32 in the paper).
    pub word_bits: u32,
}

impl FixedStep {
    /// Number of fractional bits held by the accumulator during this pass.
    #[must_use]
    pub fn accumulator_frac_bits(&self) -> u32 {
        self.in_frac_bits + self.coeff_frac_bits
    }

    /// Aligns and rounds an accumulator value into the output format.
    ///
    /// # Errors
    ///
    /// Returns a fixed-point overflow error if the rounded value does not fit
    /// the output word — i.e. the Table II integer part was violated.
    pub fn round(&self, acc: i64) -> Result<i64, DwtError> {
        Ok(align_and_round_checked(
            acc,
            self.accumulator_frac_bits(),
            self.out_frac_bits,
            self.word_bits,
        )?)
    }
}

/// One level of periodic 1-D fixed-point analysis, returning
/// `(approximation, detail)` raw words in the output format of `step`.
///
/// # Errors
///
/// Returns an error if the 64-bit accumulator or the output word overflows.
///
/// # Panics
///
/// Panics if `x` has an odd or zero length.
pub fn analyze_periodic_fixed(
    x: &[i64],
    lowpass: &QuantizedKernel,
    highpass: &QuantizedKernel,
    step: FixedStep,
) -> Result<(Vec<i64>, Vec<i64>), DwtError> {
    let mut out = vec![0i64; x.len()];
    analyze_periodic_fixed_into(x, lowpass, highpass, step, &mut out)?;
    let detail = out.split_off(x.len() / 2);
    Ok((out, detail))
}

/// As [`analyze_periodic_fixed`], but writing `[approximation | detail]`
/// into a caller-provided buffer of the same length as `x` — the
/// allocation-free form the line-based engine runs its pooled row buffers
/// through.
///
/// # Panics
///
/// Panics if `x` has an odd or zero length, or `out` has a different length.
pub(crate) fn analyze_periodic_fixed_into(
    x: &[i64],
    lowpass: &QuantizedKernel,
    highpass: &QuantizedKernel,
    step: FixedStep,
    out: &mut [i64],
) -> Result<(), DwtError> {
    let n = x.len();
    assert!(n >= 2 && n % 2 == 0, "signal length must be even and non-zero, got {n}");
    assert_eq!(out.len(), n, "output buffer must match the signal length");
    let half = n / 2;
    let (approx, detail) = out.split_at_mut(half);
    let mut acc = MacAccumulator::new();

    // One wrap-free check per pass (see the module docs): if the worst-case
    // dot product provably fits the 64-bit accumulator, the interior outputs
    // skip both the index wrap and the per-tap overflow checks.
    let (lo, hi) = if analysis_fits_unchecked(x, lowpass, highpass) {
        interior_range(n, lowpass, highpass)
    } else {
        (0, 0)
    };

    // Boundary outputs before the interior: periodic wrap, checked taps.
    let boundary = |k: usize,
                    approx: &mut [i64],
                    detail: &mut [i64],
                    acc: &mut MacAccumulator|
     -> Result<(), DwtError> {
        let base = 2 * k as i64;
        acc.clear();
        for (m, c) in indexed(lowpass) {
            acc.mac(c, x[(base + i64::from(m)).rem_euclid(n as i64) as usize])?;
        }
        approx[k] = step.round(acc.value())?;
        acc.clear();
        for (m, c) in indexed(highpass) {
            acc.mac(c, x[(base + i64::from(m)).rem_euclid(n as i64) as usize])?;
        }
        detail[k] = step.round(acc.value())?;
        Ok(())
    };

    for k in 0..lo.min(half) {
        boundary(k, approx, detail, &mut acc)?;
    }
    for k in lo..hi.min(half) {
        // Interior fast path: both kernels read a contiguous window, consumed
        // by the chunked multi-lane MAC kernel (bit-identical to the scalar
        // chain under the once-per-pass bound — see `MacAccumulator::mac_slice`).
        let lp_start = (2 * k as i64 + i64::from(lowpass.min_index())) as usize;
        acc.clear();
        acc.mac_slice(lowpass.raw(), &x[lp_start..lp_start + lowpass.len()]);
        approx[k] = step.round(acc.value())?;
        let hp_start = (2 * k as i64 + i64::from(highpass.min_index())) as usize;
        acc.clear();
        acc.mac_slice(highpass.raw(), &x[hp_start..hp_start + highpass.len()]);
        detail[k] = step.round(acc.value())?;
    }
    for k in lo.max(hi.min(half))..half {
        boundary(k, approx, detail, &mut acc)?;
    }
    Ok(())
}

/// Range of output indices `k` (half-open) whose taps stay inside the signal
/// for **both** kernels, so no periodic wrap is needed.
fn interior_range(n: usize, a: &QuantizedKernel, b: &QuantizedKernel) -> (usize, usize) {
    let min_m = i64::from(a.min_index().min(b.min_index()));
    let max_m = i64::from(a.max_index().max(b.max_index()));
    // Interior requires 2k + min_m >= 0 and 2k + max_m <= n - 1.
    let lo = ((-min_m).max(0) + 1) / 2;
    let hi = (n as i64 - 1 - max_m).div_euclid(2) + 1;
    if hi <= lo {
        (0, 0)
    } else {
        (lo as usize, hi as usize)
    }
}

/// The once-per-pass bound check of the analysis fast path: worst-case
/// partial sums of either kernel against this pass's actual samples fit `i64`.
fn analysis_fits_unchecked(x: &[i64], lp: &QuantizedKernel, hp: &QuantizedKernel) -> bool {
    let max_abs = x.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
    let l1 = kernel_l1(lp).max(kernel_l1(hp));
    dot_product_fits_i64(l1, u128::from(max_abs))
}

/// Sum of absolute raw coefficient words (the kernel's L1 norm in raw units).
pub(crate) fn kernel_l1(kernel: &QuantizedKernel) -> u128 {
    kernel.raw().iter().map(|&c| u128::from(c.unsigned_abs())).sum()
}

/// One level of periodic 1-D fixed-point synthesis from `(approximation,
/// detail)`, returning raw words in the output format of `step`.
///
/// # Errors
///
/// Returns an error if the 64-bit accumulator or the output word overflows.
///
/// # Panics
///
/// Panics if the two halves have different lengths or are empty.
pub fn synthesize_periodic_fixed(
    approx: &[i64],
    detail: &[i64],
    lowpass: &QuantizedKernel,
    highpass: &QuantizedKernel,
    step: FixedStep,
) -> Result<Vec<i64>, DwtError> {
    assert_eq!(approx.len(), detail.len(), "subband lengths must match");
    assert!(!approx.is_empty(), "subbands must not be empty");
    let n = approx.len() * 2;
    // Scatter-accumulate in 64 bits: each output receives contributions from
    // roughly L/2 taps of each synthesis filter, which the word-length plan
    // keeps within the 64-bit range (the hardware uses the same 64-bit
    // accumulator).
    let mut acc = vec![0i64; n];

    // Interior fast path: the sum of L1 norms bounds every output because an
    // output never receives more than each kernel's full set of taps (see
    // the module docs); checked once per pass.
    let (lo, hi) = if synthesis_fits_unchecked(approx, detail, lowpass, highpass) {
        interior_range(n, lowpass, highpass)
    } else {
        (0, 0)
    };

    let boundary = |k: usize, acc: &mut [i64]| -> Result<(), DwtError> {
        let base = 2 * k as i64;
        let a = approx[k];
        for (m, c) in indexed(lowpass) {
            let idx = (base + i64::from(m)).rem_euclid(n as i64) as usize;
            acc[idx] = acc[idx]
                .checked_add(c.checked_mul(a).ok_or(lwc_fixed::FixedError::AccumulatorOverflow)?)
                .ok_or(lwc_fixed::FixedError::AccumulatorOverflow)?;
        }
        let d = detail[k];
        for (m, c) in indexed(highpass) {
            let idx = (base + i64::from(m)).rem_euclid(n as i64) as usize;
            acc[idx] = acc[idx]
                .checked_add(c.checked_mul(d).ok_or(lwc_fixed::FixedError::AccumulatorOverflow)?)
                .ok_or(lwc_fixed::FixedError::AccumulatorOverflow)?;
        }
        Ok(())
    };

    let half = approx.len();
    for k in 0..lo.min(half) {
        boundary(k, &mut acc)?;
    }
    for k in lo..hi.min(half) {
        let a = approx[k];
        let lp_start = (2 * k as i64 + i64::from(lowpass.min_index())) as usize;
        for (&c, slot) in lowpass.raw().iter().zip(&mut acc[lp_start..lp_start + lowpass.len()]) {
            *slot += c * a;
        }
        let d = detail[k];
        let hp_start = (2 * k as i64 + i64::from(highpass.min_index())) as usize;
        for (&c, slot) in highpass.raw().iter().zip(&mut acc[hp_start..hp_start + highpass.len()]) {
            *slot += c * d;
        }
    }
    for k in lo.max(hi.min(half))..half {
        boundary(k, &mut acc)?;
    }
    acc.into_iter().map(|v| step.round(v)).collect()
}

/// The once-per-pass bound check of the synthesis fast path.
///
/// Every reconstruction output accumulates at most all taps of the low-pass
/// kernel against approximation samples plus all taps of the high-pass kernel
/// against detail samples, so `(L1(lp) + L1(hp)) * max|input|` bounds every
/// partial sum.
fn synthesis_fits_unchecked(
    approx: &[i64],
    detail: &[i64],
    lp: &QuantizedKernel,
    hp: &QuantizedKernel,
) -> bool {
    let max_abs = approx.iter().chain(detail).map(|&v| v.unsigned_abs()).max().unwrap_or(0);
    dot_product_fits_i64(kernel_l1(lp) + kernel_l1(hp), u128::from(max_abs))
}

/// Iterates over `(tap index, raw coefficient)` pairs of a quantized kernel.
pub(crate) fn indexed(kernel: &QuantizedKernel) -> impl Iterator<Item = (i32, i64)> + '_ {
    let min = kernel.min_index();
    kernel.raw().iter().enumerate().map(move |(i, &c)| (min + i as i32, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dwt1d;
    use lwc_filters::{FilterBank, FilterId, QuantizedBank};
    use lwc_wordlen::WordLengthPlan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(id: FilterId) -> (FilterBank, QuantizedBank, WordLengthPlan) {
        let bank = FilterBank::table1(id);
        let qbank = QuantizedBank::paper_default(&bank).unwrap();
        let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
        (bank, qbank, plan)
    }

    fn random_raw(n: usize, frac_bits: u32, peak: i64, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=peak) << frac_bits).collect()
    }

    #[test]
    fn fixed_analysis_matches_float_reference_closely() {
        for id in FilterId::ALL {
            let (bank, qbank, plan) = setup(id);
            let step = FixedStep {
                in_frac_bits: plan.frac_bits_for_scale(0),
                out_frac_bits: plan.frac_bits_for_scale(1),
                coeff_frac_bits: plan.coeff_format().frac_bits(),
                word_bits: plan.word_bits(),
            };
            let raw = random_raw(32, plan.frac_bits_for_scale(0), 4095, 5);
            let float: Vec<f64> = raw
                .iter()
                .map(|&r| r as f64 / (plan.frac_bits_for_scale(0) as f64).exp2())
                .collect();

            let (fa, fd) = analyze_periodic_fixed(
                &raw,
                qbank.analysis_lowpass(),
                qbank.analysis_highpass(),
                step,
            )
            .unwrap();
            let (ra, rd) = dwt1d::analyze_periodic(&float, &bank);

            let out_lsb = (plan.frac_bits_for_scale(1) as f64).exp2().recip();
            for (f, r) in fa.iter().zip(&ra).chain(fd.iter().zip(&rd)) {
                let fixed_value = *f as f64 * out_lsb;
                assert!((fixed_value - r).abs() < 1e-3, "{id}: fixed {fixed_value} vs float {r}");
            }
        }
    }

    #[test]
    fn fixed_roundtrip_error_is_below_half_input_lsb() {
        for id in FilterId::ALL {
            let (_bank, qbank, plan) = setup(id);
            let in_frac = plan.frac_bits_for_scale(0);
            let analysis_step = FixedStep {
                in_frac_bits: in_frac,
                out_frac_bits: plan.frac_bits_for_scale(1),
                coeff_frac_bits: plan.coeff_format().frac_bits(),
                word_bits: plan.word_bits(),
            };
            let synthesis_step = FixedStep {
                in_frac_bits: plan.frac_bits_for_scale(1),
                out_frac_bits: in_frac,
                coeff_frac_bits: plan.coeff_format().frac_bits(),
                word_bits: plan.word_bits(),
            };
            let raw = random_raw(64, in_frac, 4095, 17);
            let (a, d) = analyze_periodic_fixed(
                &raw,
                qbank.analysis_lowpass(),
                qbank.analysis_highpass(),
                analysis_step,
            )
            .unwrap();
            let back = synthesize_periodic_fixed(
                &a,
                &d,
                qbank.synthesis_lowpass(),
                qbank.synthesis_highpass(),
                synthesis_step,
            )
            .unwrap();
            let lsb = (in_frac as f64).exp2().recip();
            let max_err = raw
                .iter()
                .zip(&back)
                .map(|(&x, &y)| ((x - y) as f64 * lsb).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 0.5, "{id}: 1-D fixed round-trip error {max_err}");
        }
    }

    #[test]
    fn overflow_of_the_output_word_is_detected() {
        let (_bank, qbank, plan) = setup(FilterId::F4);
        // Deliberately keep the output integer part as small as the input's:
        // the ×2.12 low-pass gain overflows 13 integer bits for full-scale
        // data.
        let step = FixedStep {
            in_frac_bits: plan.frac_bits_for_scale(0),
            out_frac_bits: plan.frac_bits_for_scale(0),
            coeff_frac_bits: plan.coeff_format().frac_bits(),
            word_bits: plan.word_bits(),
        };
        let raw = vec![4095i64 << plan.frac_bits_for_scale(0); 16];
        let result =
            analyze_periodic_fixed(&raw, qbank.analysis_lowpass(), qbank.analysis_highpass(), step);
        assert!(result.is_err(), "storing grown data in the input format must overflow");
    }

    #[test]
    fn step_reports_accumulator_precision() {
        let step =
            FixedStep { in_frac_bits: 19, out_frac_bits: 17, coeff_frac_bits: 30, word_bits: 32 };
        assert_eq!(step.accumulator_frac_bits(), 49);
        // Rounding half up: 1.5 LSBs of the output -> 2.
        let acc = 3i64 << (49 - 17 - 1);
        assert_eq!(step.round(acc).unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_signals_are_rejected() {
        let (_bank, qbank, plan) = setup(FilterId::F1);
        let step = FixedStep {
            in_frac_bits: plan.frac_bits_for_scale(0),
            out_frac_bits: plan.frac_bits_for_scale(1),
            coeff_frac_bits: 30,
            word_bits: 32,
        };
        let _ = analyze_periodic_fixed(
            &[1, 2, 3],
            qbank.analysis_lowpass(),
            qbank.analysis_highpass(),
            step,
        );
    }
}
