//! Error type for the transform crates.

use lwc_fixed::FixedError;
use lwc_image::ImageError;
use lwc_wordlen::PlanError;
use std::error::Error;
use std::fmt;

/// Errors produced by the forward/inverse wavelet transforms.
#[derive(Debug)]
#[non_exhaustive]
pub enum DwtError {
    /// The image dimensions cannot be decomposed to the requested depth
    /// (each scale requires both dimensions to be even).
    NotDecomposable {
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
        /// Requested number of scales.
        scales: u32,
    },
    /// The decomposition passed to the inverse transform was produced with a
    /// different filter or scale count.
    ConfigurationMismatch(String),
    /// A word-length plan problem.
    Plan(PlanError),
    /// A fixed-point arithmetic problem (overflow of the datapath word).
    Fixed(FixedError),
    /// An image container problem.
    Image(ImageError),
}

impl fmt::Display for DwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DwtError::NotDecomposable { width, height, scales } => {
                write!(f, "a {width}x{height} image cannot be decomposed over {scales} scales")
            }
            DwtError::ConfigurationMismatch(msg) => write!(f, "configuration mismatch: {msg}"),
            DwtError::Plan(e) => write!(f, "word-length plan error: {e}"),
            DwtError::Fixed(e) => write!(f, "fixed-point error: {e}"),
            DwtError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl Error for DwtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DwtError::Plan(e) => Some(e),
            DwtError::Fixed(e) => Some(e),
            DwtError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for DwtError {
    fn from(e: PlanError) -> Self {
        DwtError::Plan(e)
    }
}

impl From<FixedError> for DwtError {
    fn from(e: FixedError) -> Self {
        DwtError::Fixed(e)
    }
}

impl From<ImageError> for DwtError {
    fn from(e: ImageError) -> Self {
        DwtError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DwtError::NotDecomposable { width: 30, height: 20, scales: 4 };
        assert!(e.to_string().contains("30x20"));
        let e = DwtError::ConfigurationMismatch("filter differs".to_owned());
        assert!(e.to_string().contains("filter differs"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: DwtError = FixedError::NonFinite.into();
        assert!(Error::source(&e).is_some());
        let e: DwtError = PlanError::NoScales.into();
        assert!(Error::source(&e).is_some());
        let io = ImageError::InvalidBitDepth(33);
        let e: DwtError = io.into();
        assert!(Error::source(&e).is_some());
    }
}
