//! Two-dimensional pyramid transform in the paper's fixed-point arithmetic.

use crate::fixed1d::{analyze_periodic_fixed, synthesize_periodic_fixed, FixedStep};
use crate::{Decomposition, Dwt2d, DwtError};
use lwc_filters::{FilterBank, QuantizedBank};
use lwc_fixed::round_half_up_shift;
use lwc_image::{Image, ImageView, ImageViewMut};
use lwc_wordlen::WordLengthPlan;

/// Number of columns gathered into the contiguous scratch buffer per block.
///
/// The column passes used to walk the image with a stride of one row per
/// tap — a cache miss per access for any realistically sized image. Instead,
/// a block of this many columns is transposed into a scratch buffer with
/// row-wise (sequential) reads, filtered as contiguous 1-D signals, and
/// transposed back with row-wise writes. The win comes from making every
/// image access sequential (the hardware prefetcher's favourite pattern) and
/// from filtering columns as contiguous slices; 32 columns keep the
/// transpose's working set of distinct cache lines per row small while
/// amortizing the two copies over the whole filter length.
const COLUMN_BLOCK: usize = 32;

/// The bit-exact software model of the paper's datapath: 2-D pyramid DWT with
/// 32-bit fixed-point words, Table II per-scale integer parts, 64-bit
/// accumulation and round-half-up narrowing.
///
/// The forward transform produces raw coefficient words whose format depends
/// on the scale (deeper scales have wider integer parts); the inverse
/// transform reverses the alignment and finally rounds back to integer
/// pixels. For the paper's configuration the complete round trip is bit
/// exact — the lossless claim this reproduction verifies.
///
/// ```
/// use lwc_dwt::FixedDwt2d;
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_image::synth;
///
/// # fn main() -> Result<(), lwc_dwt::DwtError> {
/// let bank = FilterBank::table1(FilterId::F1);
/// let hw = FixedDwt2d::paper_default(&bank, 4)?;
/// let image = synth::ct_phantom(64, 64, 12, 0);
/// let coeffs = hw.forward(&image)?;
/// assert!(lwc_image::stats::bit_exact(&image, &hw.inverse(&coeffs)?)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FixedDwt2d {
    bank: FilterBank,
    quantized: QuantizedBank,
    plan: WordLengthPlan,
}

impl FixedDwt2d {
    /// Builds the transform with the paper's default word lengths (32-bit
    /// words and coefficients, 13-bit input).
    ///
    /// # Errors
    ///
    /// Returns an error if the word-length plan or the coefficient
    /// quantization cannot be built.
    pub fn paper_default(bank: &FilterBank, scales: u32) -> Result<Self, DwtError> {
        let plan = WordLengthPlan::paper_default(bank, scales)?;
        Self::with_plan(bank, plan)
    }

    /// Builds the transform with an explicit word-length plan (used by the
    /// word-length ablation experiments).
    ///
    /// # Errors
    ///
    /// Returns an error if the plan was derived for a different filter or if
    /// the coefficients do not fit the plan's coefficient format.
    pub fn with_plan(bank: &FilterBank, plan: WordLengthPlan) -> Result<Self, DwtError> {
        if plan.filter() != bank.id() {
            return Err(DwtError::ConfigurationMismatch(format!(
                "plan was derived for {} but the bank is {}",
                plan.filter(),
                bank.id()
            )));
        }
        let quantized = QuantizedBank::new(bank, plan.coeff_format().total_bits())?;
        Ok(Self { bank: bank.clone(), quantized, plan })
    }

    /// The floating-point filter bank.
    #[must_use]
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// The quantized coefficients the datapath actually multiplies with.
    #[must_use]
    pub fn quantized_bank(&self) -> &QuantizedBank {
        &self.quantized
    }

    /// The word-length plan in use.
    #[must_use]
    pub fn plan(&self) -> &WordLengthPlan {
        &self.plan
    }

    /// The decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.plan.scales()
    }

    /// Fixed-point step for the pass producing scale `to` data from scale
    /// `from` data — the per-pass alignment/rounding schedule. Public so
    /// alternative drivers (e.g. the row-parallel transform in
    /// `lwc-pipeline`) reuse the exact schedule instead of mirroring it.
    #[must_use]
    pub fn step(&self, from: u32, to: u32) -> FixedStep {
        FixedStep {
            in_frac_bits: self.plan.frac_bits_for_scale(from),
            out_frac_bits: self.plan.frac_bits_for_scale(to),
            coeff_frac_bits: self.plan.coeff_format().frac_bits(),
            word_bits: self.plan.word_bits(),
        }
    }

    /// Forward transform: image pixels to raw fixed-point coefficient words.
    ///
    /// # Errors
    ///
    /// * [`DwtError::NotDecomposable`] if the image does not support the
    ///   configured depth.
    /// * [`DwtError::Fixed`] if a word overflows (cannot happen when the
    ///   image respects the plan's input bit depth).
    pub fn forward(&self, image: &Image) -> Result<Decomposition<i64>, DwtError> {
        self.forward_view(&image.view())
    }

    /// Forward transform of a borrowed (possibly strided) window of a larger
    /// frame — the tile-parallel entry point: a tile is gathered straight out
    /// of the frame with stride-aware row reads, so no copy of the full frame
    /// (or even an owned tile image) is ever made.
    ///
    /// ```
    /// use lwc_dwt::FixedDwt2d;
    /// use lwc_filters::{FilterBank, FilterId};
    /// use lwc_image::{synth, TileRect};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let bank = FilterBank::table1(FilterId::F1);
    /// let hw = FixedDwt2d::paper_default(&bank, 2)?;
    /// let frame = synth::ct_phantom(128, 128, 12, 0);
    /// let rect = TileRect { x: 32, y: 64, width: 32, height: 32 };
    /// let coeffs = hw.forward_view(&frame.view_rect(rect)?)?;
    /// assert_eq!(coeffs, hw.forward(&frame.crop(rect)?)?);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::forward`].
    pub fn forward_view(&self, view: &ImageView<'_>) -> Result<Decomposition<i64>, DwtError> {
        self.forward_view_with(view, |data, stride, cur_w, cur_h, s| {
            self.forward_scale(data, stride, cur_w, cur_h, s)
        })
    }

    /// Drives the forward transform with a caller-supplied per-scale pass:
    /// validation, the input shift, the scale schedule and the result
    /// packaging are all handled here, so alternative pass implementations
    /// (e.g. the row-parallel one in `lwc-pipeline`) cannot diverge from the
    /// sequential transform's driver.
    ///
    /// `pass` receives `(data, stride, cur_w, cur_h, scale)` and must perform
    /// exactly one 2-D analysis pass over the active `cur_w × cur_h` region.
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::forward`]; additionally propagates any error the
    /// pass returns.
    pub fn forward_with<F>(&self, image: &Image, pass: F) -> Result<Decomposition<i64>, DwtError>
    where
        F: FnMut(&mut [i64], usize, usize, usize, u32) -> Result<(), DwtError>,
    {
        self.forward_view_with(&image.view(), pass)
    }

    /// View-based form of [`FixedDwt2d::forward_with`]; the window is
    /// gathered with strided row reads and the pass runs on the contiguous
    /// tile-sized working buffer.
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::forward_with`].
    pub fn forward_view_with<F>(
        &self,
        view: &ImageView<'_>,
        mut pass: F,
    ) -> Result<Decomposition<i64>, DwtError>
    where
        F: FnMut(&mut [i64], usize, usize, usize, u32) -> Result<(), DwtError>,
    {
        Dwt2d::check_decomposable(view.width(), view.height(), self.scales())?;
        let width = view.width();
        let height = view.height();
        let input_shift = self.plan.frac_bits_for_scale(0);
        let mut data: Vec<i64> = Vec::with_capacity(width * height);
        for y in 0..height {
            data.extend(view.row(y).iter().map(|&v| (v as i64) << input_shift));
        }

        let mut cur_w = width;
        let mut cur_h = height;
        for s in 1..=self.scales() {
            pass(&mut data, width, cur_w, cur_h, s)?;
            cur_w /= 2;
            cur_h /= 2;
        }
        Ok(Decomposition::from_raw(
            data,
            width,
            height,
            self.scales(),
            self.bank.id(),
            view.bit_depth(),
        ))
    }

    /// Inverse transform: raw coefficient words back to an image, with the
    /// final rounding to integer pixels.
    ///
    /// # Errors
    ///
    /// * [`DwtError::ConfigurationMismatch`] if the decomposition was made
    ///   with a different filter or depth.
    /// * [`DwtError::Fixed`] if a word overflows during reconstruction.
    pub fn inverse(&self, decomposition: &Decomposition<i64>) -> Result<Image, DwtError> {
        self.inverse_with(decomposition, |data, stride, cur_w, cur_h, s| {
            self.inverse_scale(data, stride, cur_w, cur_h, s)
        })
    }

    /// Drives the inverse transform with a caller-supplied per-scale pass;
    /// the counterpart of [`FixedDwt2d::forward_with`], owning the
    /// configuration checks, the reversed scale schedule and the final
    /// round-half-up narrowing to integer pixels.
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::inverse`]; additionally propagates any error the
    /// pass returns.
    pub fn inverse_with<F>(
        &self,
        decomposition: &Decomposition<i64>,
        pass: F,
    ) -> Result<Image, DwtError>
    where
        F: FnMut(&mut [i64], usize, usize, usize, u32) -> Result<(), DwtError>,
    {
        let data = self.inverse_core(decomposition, pass)?;
        // Final rounding from the scale-0 format back to integer pixels.
        let frac0 = self.plan.frac_bits_for_scale(0);
        let max = (1i32 << decomposition.input_bit_depth()) - 1;
        let samples: Vec<i32> = data
            .iter()
            .map(|&raw| (round_half_up_shift(raw, frac0) as i32).clamp(0, max))
            .collect();
        Ok(Image::from_samples(
            decomposition.width(),
            decomposition.height(),
            decomposition.input_bit_depth(),
            samples,
        )?)
    }

    /// Inverse transform scattered into a window of an existing frame — the
    /// decode counterpart of [`FixedDwt2d::forward_view`]. The reconstructed
    /// pixels are written row by row into `out`; nothing outside the window
    /// is touched and no frame-sized intermediate is allocated.
    ///
    /// # Errors
    ///
    /// Everything [`FixedDwt2d::inverse`] reports, plus
    /// [`DwtError::ConfigurationMismatch`] if the window's shape or bit depth
    /// differs from the decomposition's.
    pub fn inverse_into(
        &self,
        decomposition: &Decomposition<i64>,
        out: &mut ImageViewMut<'_>,
    ) -> Result<(), DwtError> {
        if out.width() != decomposition.width()
            || out.height() != decomposition.height()
            || out.bit_depth() != decomposition.input_bit_depth()
        {
            return Err(DwtError::ConfigurationMismatch(format!(
                "decomposition is {}x{} at {} bits but the target window is {}x{} at {} bits",
                decomposition.width(),
                decomposition.height(),
                decomposition.input_bit_depth(),
                out.width(),
                out.height(),
                out.bit_depth()
            )));
        }
        let data = self.inverse_core(decomposition, |data, stride, cur_w, cur_h, s| {
            self.inverse_scale(data, stride, cur_w, cur_h, s)
        })?;
        let frac0 = self.plan.frac_bits_for_scale(0);
        let max = (1i32 << decomposition.input_bit_depth()) - 1;
        let width = decomposition.width();
        for y in 0..decomposition.height() {
            let row = &data[y * width..(y + 1) * width];
            for (slot, &raw) in out.row_mut(y).iter_mut().zip(row) {
                *slot = (round_half_up_shift(raw, frac0) as i32).clamp(0, max);
            }
        }
        Ok(())
    }

    /// Shared driver of the inverse passes: configuration checks, the
    /// reversed scale schedule, and the raw scale-0 words (before the final
    /// rounding to pixels).
    fn inverse_core<F>(
        &self,
        decomposition: &Decomposition<i64>,
        mut pass: F,
    ) -> Result<Vec<i64>, DwtError>
    where
        F: FnMut(&mut [i64], usize, usize, usize, u32) -> Result<(), DwtError>,
    {
        if decomposition.filter() != self.bank.id() {
            return Err(DwtError::ConfigurationMismatch(format!(
                "decomposition was made with {} but the transform uses {}",
                decomposition.filter(),
                self.bank.id()
            )));
        }
        if decomposition.scales() != self.scales() {
            return Err(DwtError::ConfigurationMismatch(format!(
                "decomposition has {} scales but the transform expects {}",
                decomposition.scales(),
                self.scales()
            )));
        }
        let width = decomposition.width();
        let height = decomposition.height();
        let mut data = decomposition.data().to_vec();
        for s in (1..=self.scales()).rev() {
            let cur_w = width >> (s - 1);
            let cur_h = height >> (s - 1);
            pass(&mut data, width, cur_w, cur_h, s)?;
        }
        Ok(data)
    }

    /// Convenience helper: forward followed by inverse.
    ///
    /// # Errors
    ///
    /// See [`FixedDwt2d::forward`] and [`FixedDwt2d::inverse`].
    pub fn roundtrip(&self, image: &Image) -> Result<Image, DwtError> {
        let d = self.forward(image)?;
        self.inverse(&d)
    }

    fn forward_scale(
        &self,
        data: &mut [i64],
        stride: usize,
        cur_w: usize,
        cur_h: usize,
        s: u32,
    ) -> Result<(), DwtError> {
        let row_step = self.step(s - 1, s);
        let col_step = self.step(s, s);
        let lp = self.quantized.analysis_lowpass();
        let hp = self.quantized.analysis_highpass();

        let mut row = vec![0i64; cur_w];
        for y in 0..cur_h {
            let base = y * stride;
            row.copy_from_slice(&data[base..base + cur_w]);
            let (a, d) = analyze_periodic_fixed(&row, lp, hp, row_step)?;
            data[base..base + cur_w / 2].copy_from_slice(&a);
            data[base + cur_w / 2..base + cur_w].copy_from_slice(&d);
        }
        blocked_column_pass(data, stride, cur_w, cur_h, |col| {
            let (a, d) = analyze_periodic_fixed(col, lp, hp, col_step)?;
            let half = col.len() / 2;
            col[..half].copy_from_slice(&a);
            col[half..].copy_from_slice(&d);
            Ok(())
        })
    }

    fn inverse_scale(
        &self,
        data: &mut [i64],
        stride: usize,
        cur_w: usize,
        cur_h: usize,
        s: u32,
    ) -> Result<(), DwtError> {
        let col_step = self.step(s, s);
        let row_step = self.step(s, s - 1);
        let lp = self.quantized.synthesis_lowpass();
        let hp = self.quantized.synthesis_highpass();

        // Undo the column pass, through the same blocked transpose as the
        // forward column pass (the gather naturally lands the approximation
        // rows in the first half of each scratch column and the detail rows
        // in the second).
        blocked_column_pass(data, stride, cur_w, cur_h, |col| {
            let (a, d) = col.split_at(col.len() / 2);
            let full = synthesize_periodic_fixed(a, d, lp, hp, col_step)?;
            col.copy_from_slice(&full);
            Ok(())
        })?;
        // Undo the row pass, dropping back to the shallower scale's format.
        let mut approx = vec![0i64; cur_w / 2];
        let mut detail = vec![0i64; cur_w / 2];
        for y in 0..cur_h {
            let base = y * stride;
            approx.copy_from_slice(&data[base..base + cur_w / 2]);
            detail.copy_from_slice(&data[base + cur_w / 2..base + cur_w]);
            let row = synthesize_periodic_fixed(&approx, &detail, lp, hp, row_step)?;
            data[base..base + cur_w].copy_from_slice(&row);
        }
        Ok(())
    }
}

/// Drives one column pass of the active `cur_w × cur_h` region through the
/// blocked transpose scratch: a block of [`COLUMN_BLOCK`] columns is gathered
/// with sequential row reads, each column is handed to `filter_column` as a
/// contiguous signal to transform in place, and the block is scattered back
/// with sequential row writes.
fn blocked_column_pass<F>(
    data: &mut [i64],
    stride: usize,
    cur_w: usize,
    cur_h: usize,
    mut filter_column: F,
) -> Result<(), DwtError>
where
    F: FnMut(&mut [i64]) -> Result<(), DwtError>,
{
    let block = COLUMN_BLOCK.min(cur_w);
    let mut scratch = vec![0i64; cur_h * block];
    for x0 in (0..cur_w).step_by(block) {
        let bw = block.min(cur_w - x0);
        // Transpose a block of columns in with sequential row reads.
        for y in 0..cur_h {
            let row = &data[y * stride + x0..y * stride + x0 + bw];
            for (j, &v) in row.iter().enumerate() {
                scratch[j * cur_h + y] = v;
            }
        }
        for j in 0..bw {
            filter_column(&mut scratch[j * cur_h..(j + 1) * cur_h])?;
        }
        // Transpose back out with sequential row writes.
        for y in 0..cur_h {
            let row = &mut data[y * stride + x0..y * stride + x0 + bw];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = scratch[j * cur_h + y];
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subband;
    use lwc_filters::FilterId;
    use lwc_image::{stats, synth};

    #[test]
    fn roundtrip_is_bit_exact_for_all_banks_on_random_images() {
        // The paper's validation: random images, hardware arithmetic, output
        // must match the original exactly.
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let hw = FixedDwt2d::paper_default(&bank, 4).unwrap();
            let image = synth::random_image(64, 64, 12, id.index() as u64);
            let back = hw.roundtrip(&image).unwrap();
            assert!(
                stats::bit_exact(&image, &back).unwrap(),
                "{id}: fixed-point roundtrip must be lossless, max diff {}",
                stats::max_abs_diff(&image, &back).unwrap()
            );
        }
    }

    #[test]
    fn six_scale_roundtrip_matches_paper_configuration() {
        let bank = FilterBank::table1(FilterId::F2);
        let hw = FixedDwt2d::paper_default(&bank, 6).unwrap();
        let image = synth::random_image(128, 128, 12, 77);
        let back = hw.roundtrip(&image).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn phantom_images_are_also_lossless() {
        let bank = FilterBank::table1(FilterId::F1);
        let hw = FixedDwt2d::paper_default(&bank, 5).unwrap();
        for image in [synth::ct_phantom(96, 64, 12, 3), synth::mr_slice(64, 96, 12, 4)] {
            let back = hw.roundtrip(&image).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap());
        }
    }

    #[test]
    fn forward_matches_float_reference_within_a_fraction_of_an_lsb() {
        let bank = FilterBank::table1(FilterId::F4);
        let hw = FixedDwt2d::paper_default(&bank, 3).unwrap();
        let float = Dwt2d::new(bank.clone(), 3).unwrap();
        let image = synth::ct_phantom(64, 64, 12, 9);
        let fixed = hw.forward(&image).unwrap();
        let reference = float.forward(&image).unwrap();
        // Compare the deepest approximation subband.
        let frac = hw.plan().frac_bits_for_scale(3) as f64;
        let lsb = frac.exp2().recip();
        let fa = fixed.subband(3, Subband::Approx);
        let ra = reference.subband(3, Subband::Approx);
        for (f, r) in fa.iter().zip(&ra) {
            let v = *f as f64 * lsb;
            assert!((v - r).abs() < 0.01, "fixed {v} vs float {r}");
        }
    }

    #[test]
    fn detail_subbands_of_a_flat_image_are_zero_words() {
        let bank = FilterBank::table1(FilterId::F5);
        let hw = FixedDwt2d::paper_default(&bank, 2).unwrap();
        let image = synth::flat(32, 32, 12, 2222);
        let d = hw.forward(&image).unwrap();
        for band in Subband::DETAILS {
            let max = d.subband(1, band).iter().map(|v| v.abs()).max().unwrap();
            // Allow a couple of LSBs of rounding noise in the raw words.
            assert!(max <= 2, "{band}: {max}");
        }
    }

    #[test]
    fn mismatched_plan_and_bank_are_rejected() {
        let f1 = FilterBank::table1(FilterId::F1);
        let f4 = FilterBank::table1(FilterId::F4);
        let plan = WordLengthPlan::paper_default(&f1, 3).unwrap();
        assert!(matches!(
            FixedDwt2d::with_plan(&f4, plan),
            Err(DwtError::ConfigurationMismatch(_))
        ));
    }

    #[test]
    fn inverse_rejects_foreign_decompositions() {
        let f1 = FixedDwt2d::paper_default(&FilterBank::table1(FilterId::F1), 2).unwrap();
        let f6 = FixedDwt2d::paper_default(&FilterBank::table1(FilterId::F6), 2).unwrap();
        let image = synth::random_image(32, 32, 12, 0);
        let d = f1.forward(&image).unwrap();
        assert!(f6.inverse(&d).is_err());
    }

    #[test]
    fn undecomposable_images_are_rejected() {
        let hw = FixedDwt2d::paper_default(&FilterBank::table1(FilterId::F1), 5).unwrap();
        let image = synth::flat(48, 48, 12, 1);
        assert!(matches!(hw.forward(&image), Err(DwtError::NotDecomposable { .. })));
    }

    #[test]
    fn accessors_expose_configuration() {
        let bank = FilterBank::table1(FilterId::F3);
        let hw = FixedDwt2d::paper_default(&bank, 4).unwrap();
        assert_eq!(hw.scales(), 4);
        assert_eq!(hw.bank().id(), FilterId::F3);
        assert_eq!(hw.plan().word_bits(), 32);
        assert_eq!(hw.quantized_bank().format().frac_bits(), 30);
    }

    #[test]
    fn tile_views_transform_identically_to_owned_tiles() {
        use lwc_image::TileRect;
        let bank = FilterBank::table1(FilterId::F2);
        let hw = FixedDwt2d::paper_default(&bank, 3).unwrap();
        let frame = synth::ct_phantom(128, 96, 12, 12);
        for rect in [
            TileRect { x: 0, y: 0, width: 64, height: 64 },
            TileRect { x: 64, y: 32, width: 64, height: 64 },
            TileRect { x: 24, y: 8, width: 32, height: 40 },
        ] {
            let via_view = hw.forward_view(&frame.view_rect(rect).unwrap()).unwrap();
            let tile = frame.crop(rect).unwrap();
            assert_eq!(via_view, hw.forward(&tile).unwrap(), "{rect:?}");
            // And the inverse scatters the tile back into a frame window.
            let mut out = Image::zeros(128, 96, 12).unwrap();
            hw.inverse_into(&via_view, &mut out.view_rect_mut(rect).unwrap()).unwrap();
            assert!(stats::bit_exact(&out.crop(rect).unwrap(), &tile).unwrap());
        }
    }

    #[test]
    fn inverse_into_rejects_mismatched_windows() {
        let bank = FilterBank::table1(FilterId::F1);
        let hw = FixedDwt2d::paper_default(&bank, 2).unwrap();
        let image = synth::random_image(32, 32, 12, 3);
        let d = hw.forward(&image).unwrap();
        let mut wrong_shape = Image::zeros(16, 32, 12).unwrap();
        assert!(matches!(
            hw.inverse_into(&d, &mut wrong_shape.view_mut()),
            Err(DwtError::ConfigurationMismatch(_))
        ));
        let mut wrong_depth = Image::zeros(32, 32, 8).unwrap();
        assert!(matches!(
            hw.inverse_into(&d, &mut wrong_depth.view_mut()),
            Err(DwtError::ConfigurationMismatch(_))
        ));
        let mut ok = Image::zeros(32, 32, 12).unwrap();
        hw.inverse_into(&d, &mut ok.view_mut()).unwrap();
        assert!(stats::bit_exact(&ok, &image).unwrap());
    }

    #[test]
    fn eight_bit_images_roundtrip_with_the_13_bit_plan() {
        // Shallower data than the plan assumes still round-trips (the plan is
        // a worst-case bound).
        let bank = FilterBank::table1(FilterId::F6);
        let hw = FixedDwt2d::paper_default(&bank, 3).unwrap();
        let image = synth::random_image(64, 64, 8, 5);
        let back = hw.roundtrip(&image).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }
}
