//! Two-dimensional pyramid transform, double-precision reference path.

use crate::dwt1d::{analyze_periodic, synthesize_periodic};
use crate::{Decomposition, DwtError};
use lwc_filters::FilterBank;
use lwc_image::Image;

/// The double-precision 2-D discrete wavelet transform (Mallat pyramid,
/// Fig. 1 of the paper).
///
/// This is the "software implementation" the paper validates its hardware
/// against; it is also what the performance model times to stand in for the
/// 133 MHz Pentium measurement.
///
/// ```
/// use lwc_dwt::Dwt2d;
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_image::synth;
///
/// # fn main() -> Result<(), lwc_dwt::DwtError> {
/// let dwt = Dwt2d::new(FilterBank::table1(FilterId::F1), 3)?;
/// let image = synth::mr_slice(64, 64, 12, 0);
/// let coeffs = dwt.forward(&image)?;
/// let back = dwt.inverse(&coeffs)?;
/// assert_eq!(lwc_image::stats::max_abs_diff(&image, &back)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dwt2d {
    bank: FilterBank,
    scales: u32,
}

impl Dwt2d {
    /// Creates a transform with the given filter bank and decomposition
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns [`DwtError::NotDecomposable`] if `scales` is zero.
    pub fn new(bank: FilterBank, scales: u32) -> Result<Self, DwtError> {
        if scales == 0 {
            return Err(DwtError::NotDecomposable { width: 0, height: 0, scales });
        }
        Ok(Self { bank, scales })
    }

    /// The filter bank in use.
    #[must_use]
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// The decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Checks that an image of `width × height` supports `scales` scales.
    ///
    /// # Errors
    ///
    /// Returns [`DwtError::NotDecomposable`] if any of the first `scales`
    /// halvings would leave an odd or empty dimension.
    pub fn check_decomposable(width: usize, height: usize, scales: u32) -> Result<(), DwtError> {
        let mut w = width;
        let mut h = height;
        for _ in 0..scales {
            if w < 2 || h < 2 || w % 2 != 0 || h % 2 != 0 {
                return Err(DwtError::NotDecomposable { width, height, scales });
            }
            w /= 2;
            h /= 2;
        }
        Ok(())
    }

    /// Forward transform of `image` over all configured scales.
    ///
    /// # Errors
    ///
    /// Returns [`DwtError::NotDecomposable`] if the image dimensions do not
    /// support the configured depth.
    pub fn forward(&self, image: &Image) -> Result<Decomposition<f64>, DwtError> {
        Self::check_decomposable(image.width(), image.height(), self.scales)?;
        let width = image.width();
        let height = image.height();
        let mut data: Vec<f64> = image.samples().iter().map(|&v| v as f64).collect();
        let mut cur_w = width;
        let mut cur_h = height;
        for _ in 0..self.scales {
            forward_scale(&mut data, width, cur_w, cur_h, &self.bank);
            cur_w /= 2;
            cur_h /= 2;
        }
        Ok(Decomposition::from_raw(
            data,
            width,
            height,
            self.scales,
            self.bank.id(),
            image.bit_depth(),
        ))
    }

    /// Inverse transform, returning an image with samples rounded to the
    /// nearest integer and clamped to the original bit depth.
    ///
    /// # Errors
    ///
    /// * [`DwtError::ConfigurationMismatch`] if the decomposition was made
    ///   with a different filter or depth.
    /// * [`DwtError::Image`] if the reconstructed samples cannot form an
    ///   image (never happens for decompositions produced by
    ///   [`Dwt2d::forward`]).
    pub fn inverse(&self, decomposition: &Decomposition<f64>) -> Result<Image, DwtError> {
        if decomposition.filter() != self.bank.id() {
            return Err(DwtError::ConfigurationMismatch(format!(
                "decomposition was made with {} but the transform uses {}",
                decomposition.filter(),
                self.bank.id()
            )));
        }
        if decomposition.scales() != self.scales {
            return Err(DwtError::ConfigurationMismatch(format!(
                "decomposition has {} scales but the transform expects {}",
                decomposition.scales(),
                self.scales
            )));
        }
        let width = decomposition.width();
        let height = decomposition.height();
        let mut data = decomposition.data().to_vec();
        for s in (1..=self.scales).rev() {
            let cur_w = width >> (s - 1);
            let cur_h = height >> (s - 1);
            inverse_scale(&mut data, width, cur_w, cur_h, &self.bank);
        }
        let max = (1i32 << decomposition.input_bit_depth()) - 1;
        let samples: Vec<i32> = data.iter().map(|&v| (v.round() as i32).clamp(0, max)).collect();
        Ok(Image::from_samples(width, height, decomposition.input_bit_depth(), samples)?)
    }

    /// Convenience helper: forward followed by inverse, returning the
    /// reconstructed image (used by the lossless round-trip checks).
    ///
    /// # Errors
    ///
    /// See [`Dwt2d::forward`] and [`Dwt2d::inverse`].
    pub fn roundtrip(&self, image: &Image) -> Result<Image, DwtError> {
        let d = self.forward(image)?;
        self.inverse(&d)
    }
}

/// One forward scale applied in place to the `cur_w × cur_h` top-left region
/// of a `stride`-wide buffer.
fn forward_scale(data: &mut [f64], stride: usize, cur_w: usize, cur_h: usize, bank: &FilterBank) {
    // Row pass: each row of the region is analyzed; approximation goes to the
    // left half, detail to the right half.
    let mut row = vec![0.0; cur_w];
    for y in 0..cur_h {
        let base = y * stride;
        row.copy_from_slice(&data[base..base + cur_w]);
        let (a, d) = analyze_periodic(&row, bank);
        data[base..base + cur_w / 2].copy_from_slice(&a);
        data[base + cur_w / 2..base + cur_w].copy_from_slice(&d);
    }
    // Column pass: each column is analyzed; approximation to the top half,
    // detail to the bottom half.
    let mut col = vec![0.0; cur_h];
    for x in 0..cur_w {
        for y in 0..cur_h {
            col[y] = data[y * stride + x];
        }
        let (a, d) = analyze_periodic(&col, bank);
        for y in 0..cur_h / 2 {
            data[y * stride + x] = a[y];
            data[(y + cur_h / 2) * stride + x] = d[y];
        }
    }
}

/// One inverse scale applied in place to the `cur_w × cur_h` top-left region.
fn inverse_scale(data: &mut [f64], stride: usize, cur_w: usize, cur_h: usize, bank: &FilterBank) {
    // Undo the column pass.
    let mut approx = vec![0.0; cur_h / 2];
    let mut detail = vec![0.0; cur_h / 2];
    for x in 0..cur_w {
        for y in 0..cur_h / 2 {
            approx[y] = data[y * stride + x];
            detail[y] = data[(y + cur_h / 2) * stride + x];
        }
        let col = synthesize_periodic(&approx, &detail, bank);
        for (y, &v) in col.iter().enumerate() {
            data[y * stride + x] = v;
        }
    }
    // Undo the row pass.
    let mut approx = vec![0.0; cur_w / 2];
    let mut detail = vec![0.0; cur_w / 2];
    for y in 0..cur_h {
        let base = y * stride;
        approx.copy_from_slice(&data[base..base + cur_w / 2]);
        detail.copy_from_slice(&data[base + cur_w / 2..base + cur_w]);
        let row = synthesize_periodic(&approx, &detail, bank);
        data[base..base + cur_w].copy_from_slice(&row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subband as Band;
    use lwc_filters::FilterId;
    use lwc_image::{stats, synth};

    #[test]
    fn roundtrip_is_exact_after_integer_rounding_for_all_banks() {
        for id in FilterId::ALL {
            let dwt = Dwt2d::new(FilterBank::table1(id), 3).unwrap();
            let image = synth::ct_phantom(64, 64, 12, 4);
            let back = dwt.roundtrip(&image).unwrap();
            assert_eq!(
                stats::max_abs_diff(&image, &back).unwrap(),
                0,
                "{id}: float roundtrip should be exact after rounding"
            );
        }
    }

    #[test]
    fn six_scale_roundtrip_on_random_image() {
        // Smaller than 512 to keep tests fast, but deep enough to exercise
        // every scale transition of the paper's configuration.
        let dwt = Dwt2d::new(FilterBank::table1(FilterId::F2), 6).unwrap();
        let image = synth::random_image(128, 128, 12, 9);
        let back = dwt.roundtrip(&image).unwrap();
        assert_eq!(stats::max_abs_diff(&image, &back).unwrap(), 0);
    }

    #[test]
    fn flat_image_concentrates_energy_in_the_approximation() {
        let dwt = Dwt2d::new(FilterBank::table1(FilterId::F4), 2).unwrap();
        let image = synth::flat(32, 32, 12, 1000);
        let d = dwt.forward(&image).unwrap();
        for s in 1..=2 {
            for band in Band::DETAILS {
                let max = d.subband(s, band).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                assert!(max < 1e-2, "scale {s} {band}: detail magnitude {max}");
            }
        }
        // DC gain per 2-D scale is 2, so after 2 scales the approximation is
        // about 4x the input level.
        let approx = d.subband(2, Band::Approx);
        let mean = approx.iter().sum::<f64>() / approx.len() as f64;
        assert!((mean - 4000.0).abs() < 10.0, "approximation mean {mean}");
    }

    #[test]
    fn detail_energy_reflects_image_content() {
        let dwt = Dwt2d::new(FilterBank::table1(FilterId::F1), 1).unwrap();
        let smooth = dwt.forward(&synth::gradient(64, 64, 12)).unwrap();
        let busy = dwt.forward(&synth::checkerboard(64, 64, 12, 1)).unwrap();
        let energy =
            |d: &Decomposition<f64>, band| d.subband(1, band).iter().map(|v| v * v).sum::<f64>();
        assert!(
            energy(&busy, Band::DiagonalDetail) > 100.0 * energy(&smooth, Band::DiagonalDetail)
        );
    }

    #[test]
    fn rejects_undecomposable_images() {
        let dwt = Dwt2d::new(FilterBank::table1(FilterId::F1), 4).unwrap();
        let image = synth::flat(24, 24, 8, 0); // 24 = 2^3·3, only 3 scales
        assert!(matches!(dwt.forward(&image), Err(DwtError::NotDecomposable { .. })));
        assert!(Dwt2d::new(FilterBank::table1(FilterId::F1), 0).is_err());
    }

    #[test]
    fn inverse_rejects_mismatched_decompositions() {
        let dwt_a = Dwt2d::new(FilterBank::table1(FilterId::F1), 2).unwrap();
        let dwt_b = Dwt2d::new(FilterBank::table1(FilterId::F4), 2).unwrap();
        let dwt_c = Dwt2d::new(FilterBank::table1(FilterId::F1), 3).unwrap();
        let image = synth::mr_slice(32, 32, 12, 2);
        let d = dwt_a.forward(&image).unwrap();
        assert!(matches!(dwt_b.inverse(&d), Err(DwtError::ConfigurationMismatch(_))));
        assert!(matches!(dwt_c.inverse(&d), Err(DwtError::ConfigurationMismatch(_))));
        assert!(dwt_a.inverse(&d).is_ok());
    }

    #[test]
    fn rectangular_images_are_supported() {
        let dwt = Dwt2d::new(FilterBank::table1(FilterId::F3), 2).unwrap();
        let image = synth::random_image(64, 32, 10, 3);
        let back = dwt.roundtrip(&image).unwrap();
        assert_eq!(stats::max_abs_diff(&image, &back).unwrap(), 0);
    }

    #[test]
    fn accessors_expose_configuration() {
        let dwt = Dwt2d::new(FilterBank::table1(FilterId::F6), 5).unwrap();
        assert_eq!(dwt.scales(), 5);
        assert_eq!(dwt.bank().id(), FilterId::F6);
    }
}
