//! One-dimensional analysis/synthesis with periodic extension
//! (double-precision reference path).
//!
//! Conventions (see `lwc-filters` for the filter derivation):
//!
//! * analysis: `a[k] = Σ_m h[m]·x[(2k+m) mod N]`,
//!   `d[k] = Σ_m g[m]·x[(2k+m) mod N]`,
//! * synthesis: `x̂[n] = Σ_k a[k]·h̃[n-2k] + Σ_k d[k]·g̃[n-2k]`,
//!   accumulated modulo `N`.
//!
//! With the Table I banks (which satisfy `Σ_n h[n]·h̃[n+2k] = δ[k]`) this is a
//! perfect-reconstruction pair for any even-length periodic signal — the
//! paper's *"circular convolution"* border treatment.

use lwc_filters::{FilterBank, Kernel};

/// Performs one level of periodic 1-D analysis, returning
/// `(approximation, detail)`, each of length `x.len() / 2`.
///
/// # Panics
///
/// Panics if `x` has an odd or zero length.
#[must_use]
pub fn analyze_periodic(x: &[f64], bank: &FilterBank) -> (Vec<f64>, Vec<f64>) {
    analyze_with(x, bank.analysis_lowpass(), bank.analysis_highpass())
}

/// Performs one level of periodic 1-D synthesis from `(approximation,
/// detail)`, returning the reconstructed signal of length `2 * approx.len()`.
///
/// # Panics
///
/// Panics if the two halves have different lengths or are empty.
#[must_use]
pub fn synthesize_periodic(approx: &[f64], detail: &[f64], bank: &FilterBank) -> Vec<f64> {
    synthesize_with(approx, detail, bank.synthesis_lowpass(), bank.synthesis_highpass())
}

/// Analysis with explicit kernels (exposed for tests and the lifting crate's
/// cross-checks).
#[must_use]
pub fn analyze_with(x: &[f64], lowpass: &Kernel, highpass: &Kernel) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    assert!(n >= 2 && n % 2 == 0, "signal length must be even and non-zero, got {n}");
    let half = n / 2;
    let mut approx = Vec::with_capacity(half);
    let mut detail = Vec::with_capacity(half);
    for k in 0..half {
        let base = 2 * k as i64;
        let mut a = 0.0;
        for (m, c) in lowpass.iter_indexed() {
            a += c * x[(base + m as i64).rem_euclid(n as i64) as usize];
        }
        approx.push(a);
        let mut d = 0.0;
        for (m, c) in highpass.iter_indexed() {
            d += c * x[(base + m as i64).rem_euclid(n as i64) as usize];
        }
        detail.push(d);
    }
    (approx, detail)
}

/// Synthesis with explicit kernels.
#[must_use]
pub fn synthesize_with(
    approx: &[f64],
    detail: &[f64],
    lowpass: &Kernel,
    highpass: &Kernel,
) -> Vec<f64> {
    assert_eq!(approx.len(), detail.len(), "subband lengths must match");
    assert!(!approx.is_empty(), "subbands must not be empty");
    let n = approx.len() * 2;
    let mut out = vec![0.0; n];
    for k in 0..approx.len() {
        let base = 2 * k as i64;
        let a = approx[k];
        for (m, c) in lowpass.iter_indexed() {
            out[(base + m as i64).rem_euclid(n as i64) as usize] += a * c;
        }
        let d = detail[k];
        for (m, c) in highpass.iter_indexed() {
            out[(base + m as i64).rem_euclid(n as i64) as usize] += d * c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::{CoefficientPrecision, FilterBank, FilterId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-2048.0..2048.0)).collect()
    }

    #[test]
    fn perfect_reconstruction_for_all_table1_banks() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            for n in [16usize, 32, 64, 50] {
                let x = random_signal(n, 7 + n as u64);
                let (a, d) = analyze_periodic(&x, &bank);
                assert_eq!(a.len(), n / 2);
                assert_eq!(d.len(), n / 2);
                let y = synthesize_periodic(&a, &d, &bank);
                let max_err = x.iter().zip(&y).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
                // Table I coefficients carry ~1e-6 truncation, so the
                // reconstruction error is a few 1e-3 for 11-bit data.
                assert!(max_err < 2e-2, "{id}, n={n}: reconstruction error {max_err}");
            }
        }
    }

    #[test]
    fn refined_banks_reconstruct_to_machine_precision() {
        for id in [FilterId::F1, FilterId::F4, FilterId::F5, FilterId::F6] {
            let bank = FilterBank::with_precision(id, CoefficientPrecision::Refined);
            let x = random_signal(64, 99);
            let (a, d) = analyze_periodic(&x, &bank);
            let y = synthesize_periodic(&a, &d, &bank);
            let max_err = x.iter().zip(&y).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
            assert!(max_err < 1e-9, "{id}: reconstruction error {max_err}");
        }
    }

    #[test]
    fn constant_signal_has_zero_detail_and_scaled_approx() {
        let bank = FilterBank::table1(FilterId::F4);
        let x = vec![100.0; 32];
        let (a, d) = analyze_periodic(&x, &bank);
        for &v in &d {
            assert!(v.abs() < 1e-3, "detail of a constant must vanish, got {v}");
        }
        for &v in &a {
            // Low-pass DC gain is √2.
            assert!((v - 100.0 * std::f64::consts::SQRT_2).abs() < 1e-3);
        }
    }

    #[test]
    fn energy_is_roughly_preserved() {
        // The Table I banks are close to orthonormal, so Parseval holds
        // approximately.
        let bank = FilterBank::table1(FilterId::F1);
        let x = random_signal(128, 3);
        let (a, d) = analyze_periodic(&x, &bank);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = a.iter().chain(&d).map(|v| v * v).sum();
        assert!((ex - ey).abs() / ex < 0.25, "energy ratio {}", ey / ex);
    }

    #[test]
    fn impulse_response_appears_in_subbands() {
        let bank = FilterBank::table1(FilterId::F4);
        let mut x = vec![0.0; 32];
        x[10] = 1.0;
        let (a, d) = analyze_periodic(&x, &bank);
        assert!(a.iter().any(|&v| v.abs() > 0.1));
        assert!(d.iter().any(|&v| v.abs() > 0.1));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let bank = FilterBank::table1(FilterId::F1);
        let _ = analyze_periodic(&[1.0, 2.0, 3.0], &bank);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_subbands_rejected() {
        let bank = FilterBank::table1(FilterId::F1);
        let _ = synthesize_periodic(&[1.0, 2.0], &[1.0], &bank);
    }

    #[test]
    fn small_periodic_signals_reconstruct_even_when_filter_wraps() {
        // Signal shorter than the filter support: the periodic extension
        // wraps several times; reconstruction must still hold.
        let bank = FilterBank::table1(FilterId::F2); // 13 taps
        let x = random_signal(8, 11);
        let (a, d) = analyze_periodic(&x, &bank);
        let y = synthesize_periodic(&a, &d, &bank);
        let max_err = x.iter().zip(&y).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
        assert!(max_err < 2e-2, "error {max_err}");
    }
}
