//! Lossless round-trip verification — the acceptance criterion of Section 3.
//!
//! *"Due to finite precision arithmetic, the reconstructed image might be not
//! numerically identical to the original one, on a pixel-by-pixel basis. That
//! means that lossless compression is not achieved."* These helpers run the
//! forward + inverse transform and report whether the reconstruction is
//! pixel-exact, for both the floating-point reference and the fixed-point
//! hardware model.

use crate::{Dwt2d, DwtError, FixedDwt2d};
use lwc_filters::FilterBank;
use lwc_image::{stats, Image};
use lwc_wordlen::WordLengthPlan;
use std::fmt;

/// Result of one forward + inverse round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundtripReport {
    /// Largest absolute pixel error after reconstruction.
    pub max_abs_error: i32,
    /// Mean squared pixel error.
    pub mse: f64,
    /// `true` when every pixel was reconstructed exactly.
    pub bit_exact: bool,
}

impl fmt::Display for RoundtripReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_exact {
            write!(f, "lossless (every pixel exact)")
        } else {
            write!(f, "lossy: max |error| = {}, mse = {:.3e}", self.max_abs_error, self.mse)
        }
    }
}

/// Builds a report comparing an original and a reconstructed image.
///
/// # Errors
///
/// Returns an error if the images have different shapes.
pub fn compare(original: &Image, reconstructed: &Image) -> Result<RoundtripReport, DwtError> {
    let max_abs_error = stats::max_abs_diff(original, reconstructed)?;
    let mse = stats::mse(original, reconstructed)?;
    Ok(RoundtripReport { max_abs_error, mse, bit_exact: max_abs_error == 0 })
}

/// Runs the double-precision round trip and reports the reconstruction
/// error.
///
/// # Errors
///
/// Propagates transform errors (undecomposable image, mismatched
/// configuration).
pub fn float_roundtrip(
    image: &Image,
    bank: &FilterBank,
    scales: u32,
) -> Result<RoundtripReport, DwtError> {
    let dwt = Dwt2d::new(bank.clone(), scales)?;
    let back = dwt.roundtrip(image)?;
    compare(image, &back)
}

/// Runs the fixed-point (hardware) round trip with the paper's default word
/// lengths and reports the reconstruction error.
///
/// # Errors
///
/// Propagates transform errors.
pub fn fixed_roundtrip(
    image: &Image,
    bank: &FilterBank,
    scales: u32,
) -> Result<RoundtripReport, DwtError> {
    let hw = FixedDwt2d::paper_default(bank, scales)?;
    let back = hw.roundtrip(image)?;
    compare(image, &back)
}

/// Runs the fixed-point round trip with an explicit word-length plan
/// (the oracle used by the minimum-word-length search).
///
/// # Errors
///
/// Propagates transform errors. A word overflow (possible for deliberately
/// narrow plans) is reported as a lossy result rather than an error so that
/// word-length sweeps can treat it uniformly.
pub fn fixed_roundtrip_with_plan(
    image: &Image,
    bank: &FilterBank,
    plan: &WordLengthPlan,
) -> Result<RoundtripReport, DwtError> {
    let hw = FixedDwt2d::with_plan(bank, plan.clone())?;
    match hw.roundtrip(image) {
        Ok(back) => compare(image, &back),
        Err(DwtError::Fixed(_)) => {
            Ok(RoundtripReport { max_abs_error: i32::MAX, mse: f64::INFINITY, bit_exact: false })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;
    use lwc_image::synth;

    #[test]
    fn fixed_roundtrip_is_lossless_for_paper_configuration() {
        let image = synth::random_image(64, 64, 12, 21);
        for id in FilterId::ALL {
            let report = fixed_roundtrip(&image, &FilterBank::table1(id), 4).unwrap();
            assert!(report.bit_exact, "{id}: {report}");
        }
    }

    #[test]
    fn float_roundtrip_is_lossless_after_rounding() {
        let image = synth::ct_phantom(64, 64, 12, 2);
        let report = float_roundtrip(&image, &FilterBank::table1(FilterId::F1), 4).unwrap();
        assert!(report.bit_exact, "{report}");
        assert_eq!(report.max_abs_error, 0);
        assert_eq!(report.mse, 0.0);
    }

    #[test]
    fn narrow_plans_lose_information() {
        // An 18-bit datapath drops to zero fractional bits from scale 4 on
        // for the F5 bank: the round trip must report errors rather than
        // pretend to be lossless. (Empirically the transform tolerates much
        // narrower words than the paper's 32 bits — see EXPERIMENTS.md — so
        // this probes the first genuinely lossy configuration.)
        let bank = FilterBank::table1(FilterId::F5);
        let plan = WordLengthPlan::new(&bank, 18, 18, 13, 4).unwrap();
        let image = synth::random_image(64, 64, 12, 8);
        let report = fixed_roundtrip_with_plan(&image, &bank, &plan).unwrap();
        assert!(!report.bit_exact, "an 18-bit datapath should not be lossless");
        assert!(report.max_abs_error > 0);
    }

    #[test]
    fn display_of_reports() {
        let exact = RoundtripReport { max_abs_error: 0, mse: 0.0, bit_exact: true };
        assert!(exact.to_string().contains("lossless"));
        let lossy = RoundtripReport { max_abs_error: 3, mse: 0.5, bit_exact: false };
        assert!(lossy.to_string().contains("max |error| = 3"));
    }

    #[test]
    fn compare_detects_differences() {
        let a = synth::flat(8, 8, 8, 3);
        let b = synth::flat(8, 8, 8, 5);
        let r = compare(&a, &b).unwrap();
        assert_eq!(r.max_abs_error, 2);
        assert!(!r.bit_exact);
    }
}
