//! Line-based fused multi-scale transform for the paper-exact fixed-point
//! datapath: the whole pyramid in one streaming pass over the image.
//!
//! The scheduling mirrors `lwc-lifting`'s `LineDwt53`: each level keeps a
//! bounded ring of horizontally transformed rows and level `n + 1` consumes
//! LL rows as level `n` emits them, so a deep decomposition reads the frame
//! from memory once instead of once per scale. The twist on this datapath is
//! the paper's **periodic** ("circular convolution") extension: unlike the
//! symmetric extension of the lifting path, the first few outputs of a
//! vertical pass tap the *bottom* rows of the active region and the last few
//! tap the *top* rows. The engine therefore splits each level's output rows
//! into an interior **streamed** range (all taps inside a sliding window,
//! computed as soon as the window covers them) and a small **deferred**
//! boundary set (computed at flush from a retained `O(filter length)` prefix
//! plus the window tail). Only the boundary rows wait for the end of input —
//! the working set stays `O(width x levels)`.
//!
//! Arithmetic is exactly the datapath's: the horizontal pass *is*
//! [`crate::analyze_periodic_fixed`] (the same `MacAccumulator::mac_slice`
//! interior fast path as the multi-pass driver), and the vertical pass
//! accumulates the same quantized taps into the same 64-bit accumulator and
//! narrows through the same [`FixedStep::round`]. The once-per-pass overflow
//! bound (`lwc_fixed::dot_product_fits_i64` against the kernel L1 norm, see
//! the `fixed1d` module docs) makes the unchecked row-major evaluation exact,
//! and exact 64-bit sums are order-independent — so every coefficient is
//! **bit-identical** to [`crate::FixedDwt2d::forward`], which stays in-tree
//! as the reference the property tests diff against.

use crate::fixed1d::{analyze_periodic_fixed_into, indexed, kernel_l1, FixedStep};
use crate::{Decomposition, Dwt2d, DwtError, FixedDwt2d};
use lwc_filters::{FilterId, QuantizedKernel};
use lwc_fixed::{dot_product_fits_i64, MacAccumulator};
use lwc_image::ImageView;
use std::collections::VecDeque;

/// One row of raw fixed-point subband words emitted by [`LineFixedDwt`].
///
/// `band` follows the workspace convention (0 = approximation, 1 =
/// horizontal detail, 2 = vertical detail, 3 = diagonal detail); `y` is the
/// row inside the subband's `(width >> scale) x (height >> scale)`
/// rectangle. Because the periodic extension is non-local, boundary rows of
/// a band are emitted *after* its interior rows — consumers must scatter by
/// `y`, not assume top-to-bottom order (the lifting-path `LineDwt53` is the
/// in-order engine).
#[derive(Debug)]
pub struct FixedCoeffRow<'a> {
    /// Scale of the subband, `1..=scales`.
    pub scale: u32,
    /// Band index, `0..=3`.
    pub band: usize,
    /// Row inside the subband rectangle.
    pub y: usize,
    /// The raw coefficient words, left to right, in the scale's Table II
    /// fixed-point format.
    pub samples: &'a [i64],
}

/// Per-level state: a sliding window of horizontally transformed rows plus a
/// retained prefix for the periodic boundary outputs.
#[derive(Debug)]
struct FixedLevel {
    /// 1-based scale this level produces.
    scale: u32,
    /// Active region entering this level.
    w: usize,
    h: usize,
    half: usize,
    row_step: FixedStep,
    col_step: FixedStep,
    /// Union of both analysis kernels' tap index ranges.
    min_m: i32,
    max_m: i32,
    /// Merged tap table over the union range: `(m, lowpass c, highpass c)`
    /// with zero coefficients outside a kernel's support, so the vertical
    /// pass reads each tap row once and feeds both accumulators.
    taps: Vec<(i32, i64, i64)>,
    /// Larger of the two kernels' L1 norms in raw units, for the
    /// once-per-output overflow bound.
    l1_max: u128,
    /// Output rows `[stream_start, hi)` are computed while streaming; rows
    /// `[0, stream_start)` and `[hi, half)` are deferred to flush because the
    /// periodic extension wraps them around the frame edge.
    stream_start: usize,
    hi: usize,
    /// Rows with index below this stay retained for the deferred outputs.
    prefix_cap: usize,
    /// Retained head rows, indexed absolutely; each entry carries the row and
    /// its max absolute sample (for the overflow bound).
    prefix: Vec<Option<(Vec<i64>, u64)>>,
    /// Sliding window of rows `[window_start, expected_next)`.
    window: VecDeque<(Vec<i64>, u64)>,
    window_start: usize,
    expected_next: usize,
    received: usize,
    next_stream: usize,
    /// Scratch for the vertical pass (both accumulators + both output rows).
    acc: Vec<i64>,
    acc2: Vec<i64>,
    approx_row: Vec<i64>,
    detail_row: Vec<i64>,
    /// Recycled row buffers (fed by [`FixedLevel::trim`] and consumed input
    /// rows), so the steady-state streaming pass allocates nothing per row.
    spare: Vec<Vec<i64>>,
}

impl FixedLevel {
    #[allow(clippy::too_many_arguments)]
    fn new(
        scale: u32,
        w: usize,
        h: usize,
        s_in: usize,
        row_step: FixedStep,
        col_step: FixedStep,
        lp: &QuantizedKernel,
        hp: &QuantizedKernel,
    ) -> Self {
        let half = h / 2;
        let min_m = lp.min_index().min(hp.min_index());
        let max_m = lp.max_index().max(hp.max_index());
        debug_assert!(min_m <= 0 && max_m >= 1, "analysis kernels must straddle the origin");
        // Interior output rows: every tap `2k + m` stays inside `[0, h)`.
        let lo = (((-i64::from(min_m)).max(0) + 1) / 2).min(half as i64) as usize;
        let hi_raw = (h as i64 - 1 - i64::from(max_m)).div_euclid(2) + 1;
        let hi = hi_raw.clamp(lo as i64, half as i64) as usize;
        // The first streamable output additionally needs all its taps at or
        // after `s_in`, the start of this level's contiguous input run.
        let cand = (s_in as i64 - i64::from(min_m) + 1).div_euclid(2);
        let stream_start = cand.clamp(lo as i64, hi as i64) as usize;
        // Deferred head outputs read unwrapped rows up to
        // `2 (stream_start - 1) + max_m`; deferred tail outputs wrap to rows
        // below `max_m - 1`; rows below `s_in` only ever arrive at flush.
        let prefix_cap = (2 * stream_start as i64 + i64::from(max_m) - 1)
            .max(s_in as i64)
            .clamp(0, h as i64) as usize;
        Self {
            scale,
            w,
            h,
            half,
            row_step,
            col_step,
            min_m,
            max_m,
            taps: (min_m..=max_m)
                .map(|m| {
                    let ca = indexed(lp).find(|&(i, _)| i == m).map_or(0, |(_, c)| c);
                    let cd = indexed(hp).find(|&(i, _)| i == m).map_or(0, |(_, c)| c);
                    (m, ca, cd)
                })
                .collect(),
            l1_max: kernel_l1(lp).max(kernel_l1(hp)),
            stream_start,
            hi,
            prefix_cap,
            prefix: (0..prefix_cap).map(|_| None).collect(),
            window: VecDeque::new(),
            window_start: s_in,
            expected_next: s_in,
            received: 0,
            next_stream: stream_start,
            acc: Vec::new(),
            acc2: Vec::new(),
            approx_row: Vec::new(),
            detail_row: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Returns a row buffer to the pool. The cascade produces more free rows
    /// than [`FixedLevel::receive`] consumes (the trimmed window row *and*
    /// the spent input row per step), so the pool is capped — a handful of
    /// buffers covers the steady state and the excess is freed.
    fn recycle(&mut self, row: Vec<i64>) {
        if self.spare.len() < 4 {
            self.spare.push(row);
        }
    }

    fn row(&self, idx: usize) -> &(Vec<i64>, u64) {
        if idx >= self.window_start && idx < self.expected_next {
            &self.window[idx - self.window_start]
        } else {
            self.prefix[idx].as_ref().expect("retention keeps every tapped row")
        }
    }

    /// Receives input row `j`: applies the horizontal pass (the *same*
    /// [`crate::analyze_periodic_fixed`] as the multi-pass row loop, via its
    /// buffer-reusing `_into` form) and stores the `[approx | detail]` row.
    fn receive(
        &mut self,
        j: usize,
        src: &[i64],
        lp: &QuantizedKernel,
        hp: &QuantizedKernel,
    ) -> Result<(), DwtError> {
        debug_assert_eq!(src.len(), self.w);
        let mut hrow = self.spare.pop().unwrap_or_default();
        hrow.clear();
        hrow.resize(self.w, 0);
        analyze_periodic_fixed_into(src, lp, hp, self.row_step, &mut hrow)?;
        let max_abs = hrow.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
        self.received += 1;
        if j == self.expected_next {
            if j < self.prefix_cap {
                self.prefix[j] = Some((hrow.clone(), max_abs));
            }
            self.window.push_back((hrow, max_abs));
            self.expected_next += 1;
        } else {
            // Flush-time arrival of a deferred head row from the level below.
            debug_assert!(j < self.window_start, "out-of-order rows only precede the run");
            debug_assert!(j < self.prefix_cap, "late rows must fit the retained prefix");
            self.prefix[j] = Some((hrow, max_abs));
        }
        Ok(())
    }

    /// Vertical pass for output row `k` into the level's scratch rows —
    /// bit-identical to filtering each column with
    /// [`analyze_periodic_fixed`]: exact 64-bit dot products (proved in range
    /// by the same L1-norm bound, checked per output here) followed by the
    /// same [`FixedStep::round`].
    fn compute_output(
        &mut self,
        k: usize,
        wrap: bool,
        lp: &QuantizedKernel,
        hp: &QuantizedKernel,
    ) -> Result<(), DwtError> {
        let tap_index = |m: i32| -> usize {
            let raw = 2 * k as i64 + i64::from(m);
            if wrap {
                raw.rem_euclid(self.h as i64) as usize
            } else {
                raw as usize
            }
        };
        let max_abs =
            (self.min_m..=self.max_m).map(|m| self.row(tap_index(m)).1).max().unwrap_or(0);
        let fits = dot_product_fits_i64(self.l1_max, u128::from(max_abs));
        if fits {
            // Fused pass: each tap row is read once and feeds both
            // accumulators. Zero coefficients outside a kernel's support add
            // exact zero terms, and exact 64-bit sums are order-independent,
            // so both output rows match the per-kernel tap-order reference
            // word for word.
            let mut acc_a = std::mem::take(&mut self.acc);
            acc_a.clear();
            acc_a.resize(self.w, 0);
            let mut acc_d = std::mem::take(&mut self.acc2);
            acc_d.clear();
            acc_d.resize(self.w, 0);
            // Blocked over x so both accumulator chunks stay L1-resident
            // across the tap sweep; at 4096-wide levels the full-width
            // accumulators alone would spill L1 on every tap.
            const X_BLOCK: usize = 1024;
            for x0 in (0..self.w).step_by(X_BLOCK) {
                let x1 = (x0 + X_BLOCK).min(self.w);
                for &(m, ca, cd) in &self.taps {
                    let r = &self.row(tap_index(m)).0[x0..x1];
                    if cd == 0 {
                        for (sa, &v) in acc_a[x0..x1].iter_mut().zip(r) {
                            *sa += ca * v;
                        }
                    } else if ca == 0 {
                        for (sd, &v) in acc_d[x0..x1].iter_mut().zip(r) {
                            *sd += cd * v;
                        }
                    } else {
                        let (aa, dd) = (&mut acc_a[x0..x1], &mut acc_d[x0..x1]);
                        for ((sa, sd), &v) in aa.iter_mut().zip(dd.iter_mut()).zip(r) {
                            *sa += ca * v;
                            *sd += cd * v;
                        }
                    }
                }
            }
            let mut a_out = std::mem::take(&mut self.approx_row);
            a_out.clear();
            for &a in &acc_a {
                a_out.push(self.col_step.round(a)?);
            }
            let mut d_out = std::mem::take(&mut self.detail_row);
            d_out.clear();
            for &d in &acc_d {
                d_out.push(self.col_step.round(d)?);
            }
            self.acc = acc_a;
            self.acc2 = acc_d;
            self.approx_row = a_out;
            self.detail_row = d_out;
        } else {
            // Pathological magnitudes (impossible under a valid Table II
            // plan): fall back to the per-tap checked accumulator in tap
            // order, preserving the reference's error behaviour.
            for (kernel, is_detail) in [(lp, false), (hp, true)] {
                let mut acc = MacAccumulator::new();
                let mut out = Vec::with_capacity(self.w);
                for x in 0..self.w {
                    acc.clear();
                    for (m, c) in indexed(kernel) {
                        acc.mac(c, self.row(tap_index(m)).0[x])?;
                    }
                    out.push(self.col_step.round(acc.value())?);
                }
                if is_detail {
                    self.detail_row = out;
                } else {
                    self.approx_row = out;
                }
            }
        }
        Ok(())
    }

    /// Drops window rows no future output can tap: streamed output `k` reads
    /// from row `2k + min_m`, and the deferred outputs read the retained
    /// prefix plus rows from `2 hi + min_m` (which also covers the wrapped
    /// bottom taps `h + min_m` of the deferred head, since `2 hi <= h`).
    fn trim(&mut self) {
        let keep = (2 * self.next_stream.min(self.hi) as i64 + i64::from(self.min_m)).max(0);
        while (self.window_start as i64) < keep {
            if let Some((row, _)) = self.window.pop_front() {
                self.recycle(row);
            }
            self.window_start += 1;
        }
    }

    fn buffered_samples(&self) -> usize {
        self.window.iter().map(|(r, _)| r.len()).sum::<usize>()
            + self.prefix.iter().flatten().map(|(r, _)| r.len()).sum::<usize>()
            + self.acc.capacity()
            + self.acc2.capacity()
            + self.approx_row.capacity()
            + self.detail_row.capacity()
            + self.spare.iter().map(Vec::capacity).sum::<usize>()
    }
}

/// Line-based fused forward transform over the paper-exact fixed-point
/// datapath: push pixel rows in with [`LineFixedDwt::push_row`], receive raw
/// subband coefficient rows through a callback, and call
/// [`LineFixedDwt::finish`] after the last row.
///
/// Bit-identical to [`FixedDwt2d::forward`] on every decomposable geometry
/// and every Table I bank (the property tests diff the two) while buffering
/// `O(width x levels)` samples. See the module docs for how the periodic
/// boundary rows are deferred.
///
/// ```
/// use lwc_dwt::{FixedDwt2d, LineFixedDwt};
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_image::synth;
///
/// # fn main() -> Result<(), lwc_dwt::DwtError> {
/// let bank = FilterBank::table1(FilterId::F4);
/// let hw = FixedDwt2d::paper_default(&bank, 3)?;
/// let image = synth::mr_slice(64, 64, 12, 9);
/// let fused = LineFixedDwt::forward_view(&hw, &image.view())?;
/// assert_eq!(fused, hw.forward(&image)?); // bit-identical, one pass
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LineFixedDwt {
    width: usize,
    height: usize,
    scales: u32,
    filter: FilterId,
    input_shift: u32,
    lp: QuantizedKernel,
    hp: QuantizedKernel,
    levels: Vec<FixedLevel>,
    rows_in: usize,
    finished: bool,
}

impl LineFixedDwt {
    /// Creates a streaming transform for a `width x height` frame using the
    /// configuration (bank, word-length plan, depth) of `dwt`.
    ///
    /// # Errors
    ///
    /// Returns [`DwtError::NotDecomposable`] if the frame does not support
    /// the configured depth.
    pub fn new(dwt: &FixedDwt2d, width: usize, height: usize) -> Result<Self, DwtError> {
        let scales = dwt.scales();
        Dwt2d::check_decomposable(width, height, scales)?;
        let lp = dwt.quantized_bank().analysis_lowpass().clone();
        let hp = dwt.quantized_bank().analysis_highpass().clone();
        let mut levels = Vec::with_capacity(scales as usize);
        let mut s_in = 0usize;
        for l in 0..scales {
            let s = l + 1;
            let level = FixedLevel::new(
                s,
                width >> l,
                height >> l,
                s_in,
                dwt.step(s - 1, s),
                dwt.step(s, s),
                &lp,
                &hp,
            );
            s_in = level.stream_start;
            levels.push(level);
        }
        Ok(Self {
            width,
            height,
            scales,
            filter: dwt.bank().id(),
            input_shift: dwt.plan().frac_bits_for_scale(0),
            lp,
            hp,
            levels,
            rows_in: 0,
            finished: false,
        })
    }

    /// Frame width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Rows pushed so far.
    #[must_use]
    pub fn rows_pushed(&self) -> usize {
        self.rows_in
    }

    /// Samples currently buffered across every level (sliding windows,
    /// retained prefixes and scratch) — bounded by the filter support times
    /// the level widths, independent of the frame height.
    #[must_use]
    pub fn working_set_samples(&self) -> usize {
        self.levels.iter().map(FixedLevel::buffered_samples).sum()
    }

    /// Pushes the next pixel row (top to bottom), emitting every coefficient
    /// row whose periodic taps are covered anywhere in the cascade.
    ///
    /// # Errors
    ///
    /// Returns [`DwtError::Fixed`] if a word overflows (cannot happen when
    /// the frame respects the plan's input bit depth).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the frame width, if more than
    /// `height` rows are pushed, or after [`LineFixedDwt::finish`].
    pub fn push_row(
        &mut self,
        row: &[i32],
        emit: &mut dyn FnMut(FixedCoeffRow<'_>),
    ) -> Result<(), DwtError> {
        assert!(!self.finished, "push_row called after finish");
        assert_eq!(row.len(), self.width, "row length must equal the frame width");
        assert!(self.rows_in < self.height, "more rows pushed than the frame height");
        let shifted: Vec<i64> = row.iter().map(|&v| (v as i64) << self.input_shift).collect();
        let j = self.rows_in;
        self.rows_in += 1;
        self.cascade(vec![(j, shifted)], false, emit)
    }

    /// Flushes the deferred periodic boundary rows after the last input row,
    /// level by level up the cascade.
    ///
    /// # Errors
    ///
    /// See [`LineFixedDwt::push_row`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `height` rows were pushed or on a second call.
    pub fn finish(&mut self, emit: &mut dyn FnMut(FixedCoeffRow<'_>)) -> Result<(), DwtError> {
        assert!(!self.finished, "finish called twice");
        assert_eq!(self.rows_in, self.height, "finish called before every row was pushed");
        self.finished = true;
        self.cascade(Vec::new(), true, emit)
    }

    /// One bottom-up sweep: deliver pending LL rows to each level, stream
    /// what became computable, and (on flush) compute the deferred boundary
    /// rows — each level's flush runs only after the level below delivered
    /// its complete output.
    fn cascade(
        &mut self,
        mut inputs: Vec<(usize, Vec<i64>)>,
        flush: bool,
        emit: &mut dyn FnMut(FixedCoeffRow<'_>),
    ) -> Result<(), DwtError> {
        let mut outputs: Vec<(usize, Vec<i64>)> = Vec::new();
        let level_count = self.levels.len();
        for li in 0..level_count {
            let is_top = li + 1 == level_count;
            let level = &mut self.levels[li];
            for (j, row) in inputs.drain(..) {
                level.receive(j, &row, &self.lp, &self.hp)?;
                // The consumed input row has this level's exact width — feed
                // it back to the pool instead of freeing it.
                level.recycle(row);
            }
            // Streamed interior rows whose window coverage is complete.
            while level.next_stream < level.hi
                && 2 * level.next_stream as i64 + i64::from(level.max_m)
                    < level.expected_next as i64
            {
                let k = level.next_stream;
                level.compute_output(k, false, &self.lp, &self.hp)?;
                level.next_stream += 1;
                level.trim();
                Self::emit_rows(level, k, is_top, &mut outputs, emit);
            }
            if flush {
                debug_assert_eq!(level.received, level.h, "flush requires the complete input");
                for k in (0..level.stream_start).chain(level.hi..level.half) {
                    level.compute_output(k, true, &self.lp, &self.hp)?;
                    Self::emit_rows(level, k, is_top, &mut outputs, emit);
                }
            }
            std::mem::swap(&mut inputs, &mut outputs);
        }
        debug_assert!(inputs.is_empty() && outputs.is_empty());
        Ok(())
    }

    /// Routes the level's scratch output rows: details to the emit callback,
    /// the LL half up the cascade (or out as band 0 at the top).
    fn emit_rows(
        level: &FixedLevel,
        k: usize,
        is_top: bool,
        outputs: &mut Vec<(usize, Vec<i64>)>,
        emit: &mut dyn FnMut(FixedCoeffRow<'_>),
    ) {
        let half_w = level.w / 2;
        let scale = level.scale;
        emit(FixedCoeffRow { scale, band: 1, y: k, samples: &level.approx_row[half_w..] });
        emit(FixedCoeffRow { scale, band: 2, y: k, samples: &level.detail_row[..half_w] });
        emit(FixedCoeffRow { scale, band: 3, y: k, samples: &level.detail_row[half_w..] });
        if is_top {
            emit(FixedCoeffRow { scale, band: 0, y: k, samples: &level.approx_row[..half_w] });
        } else {
            outputs.push((k, level.approx_row[..half_w].to_vec()));
        }
    }

    /// Convenience driver: runs a whole view through the streaming engine and
    /// assembles the in-place Mallat layout — the exact product of
    /// [`FixedDwt2d::forward_view`], used by the bit-identity tests and
    /// benches.
    ///
    /// # Errors
    ///
    /// See [`LineFixedDwt::new`] and [`LineFixedDwt::push_row`].
    pub fn forward_view(
        dwt: &FixedDwt2d,
        view: &ImageView<'_>,
    ) -> Result<Decomposition<i64>, DwtError> {
        let width = view.width();
        let height = view.height();
        let mut engine = Self::new(dwt, width, height)?;
        let mut data = vec![0i64; width * height];
        let bit_depth = view.bit_depth();
        {
            let mut sink = |c: FixedCoeffRow<'_>| {
                let w_s = width >> c.scale;
                let h_s = height >> c.scale;
                let start = match c.band {
                    0 => c.y * width,
                    1 => c.y * width + w_s,
                    2 => (h_s + c.y) * width,
                    _ => (h_s + c.y) * width + w_s,
                };
                data[start..start + c.samples.len()].copy_from_slice(c.samples);
            };
            for y in 0..height {
                engine.push_row(view.row(y), &mut sink)?;
            }
            engine.finish(&mut sink)?;
        }
        Ok(Decomposition::from_raw(data, width, height, engine.scales, engine.filter, bit_depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterBank;
    use lwc_image::synth;

    #[test]
    fn fused_matches_multi_pass_across_banks_and_geometries() {
        for id in FilterId::ALL {
            for (w, h, scales) in [(32usize, 32usize, 1u32), (64, 32, 3), (32, 64, 4), (96, 96, 5)]
            {
                let bank = FilterBank::table1(id);
                let hw = FixedDwt2d::paper_default(&bank, scales).unwrap();
                let image = synth::random_image(w, h, 12, (w + h) as u64 + id.index() as u64);
                let fused = LineFixedDwt::forward_view(&hw, &image.view()).unwrap();
                let multi = hw.forward(&image).unwrap();
                assert_eq!(fused, multi, "{id}: {w}x{h} at {scales} scales");
            }
        }
    }

    #[test]
    fn every_band_row_is_emitted_exactly_once() {
        let bank = FilterBank::table1(FilterId::F1);
        let hw = FixedDwt2d::paper_default(&bank, 3).unwrap();
        let image = synth::ct_phantom(64, 32, 12, 5);
        let mut engine = LineFixedDwt::new(&hw, 64, 32).unwrap();
        let mut seen = std::collections::HashMap::new();
        let mut emitted = 0usize;
        let mut sink = |c: FixedCoeffRow<'_>| {
            let slot = seen.entry((c.scale, c.band, c.y)).or_insert(0usize);
            *slot += 1;
            emitted += c.samples.len();
        };
        for y in 0..32 {
            engine.push_row(image.view().row(y), &mut sink).unwrap();
        }
        engine.finish(&mut sink).unwrap();
        assert_eq!(emitted, 64 * 32, "every pixel position maps to one coefficient");
        assert!(seen.values().all(|&n| n == 1), "no band row may be emitted twice");
    }

    #[test]
    fn working_set_is_bounded_by_width_not_height() {
        let bank = FilterBank::table1(FilterId::F4);
        let hw = FixedDwt2d::paper_default(&bank, 4).unwrap();
        let (w, h) = (128usize, 512usize);
        let image = synth::mr_slice(w, h, 12, 11);
        let mut engine = LineFixedDwt::new(&hw, w, h).unwrap();
        let mut peak = 0usize;
        let mut sink = |_c: FixedCoeffRow<'_>| {};
        for y in 0..h {
            engine.push_row(image.view().row(y), &mut sink).unwrap();
            peak = peak.max(engine.working_set_samples());
        }
        engine.finish(&mut sink).unwrap();
        peak = peak.max(engine.working_set_samples());
        assert!(peak <= 64 * w * 4, "peak {peak}");
        assert!(peak < w * h / 4, "peak {peak} not far below the {} pixels", w * h);
    }

    #[test]
    fn undecomposable_frames_are_rejected() {
        let bank = FilterBank::table1(FilterId::F1);
        let hw = FixedDwt2d::paper_default(&bank, 5).unwrap();
        assert!(matches!(LineFixedDwt::new(&hw, 48, 48), Err(DwtError::NotDecomposable { .. })));
    }
}
