//! Mallat-layout decomposition container and subband views.

use lwc_filters::FilterId;
use std::fmt;

/// One of the four subbands produced at each scale of the 2-D pyramid.
///
/// The paper (Fig. 1) writes them as `d^HH` (approximation — low-pass along
/// rows **and** columns), `d^HG`, `d^GH` and `d^GG`; the names below use the
/// more common orientation wording, with the paper's symbol in the docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subband {
    /// `d^HH`: low-pass rows, low-pass columns — the approximation fed to
    /// the next scale.
    Approx,
    /// `d^GH`: high-pass along rows, low-pass along columns — responds to
    /// vertical edges (horizontal detail).
    HorizontalDetail,
    /// `d^HG`: low-pass along rows, high-pass along columns — responds to
    /// horizontal edges (vertical detail).
    VerticalDetail,
    /// `d^GG`: high-pass along both — diagonal detail.
    DiagonalDetail,
}

impl Subband {
    /// The three detail subbands, in the order the coder serializes them.
    pub const DETAILS: [Subband; 3] =
        [Subband::HorizontalDetail, Subband::VerticalDetail, Subband::DiagonalDetail];

    /// The paper's notation for the subband.
    #[must_use]
    pub fn paper_symbol(self) -> &'static str {
        match self {
            Subband::Approx => "dHH",
            Subband::HorizontalDetail => "dGH",
            Subband::VerticalDetail => "dHG",
            Subband::DiagonalDetail => "dGG",
        }
    }
}

impl fmt::Display for Subband {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_symbol())
    }
}

/// A rectangular region of the Mallat layout occupied by one subband.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubbandRect {
    /// Left column of the region.
    pub x: usize,
    /// Top row of the region.
    pub y: usize,
    /// Width of the region in samples.
    pub width: usize,
    /// Height of the region in samples.
    pub height: usize,
}

impl SubbandRect {
    /// Number of samples in the region.
    #[must_use]
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Returns `true` when the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A multi-scale wavelet decomposition stored in the Mallat layout: the
/// scale-`s` approximation occupies the top-left `width/2^s × height/2^s`
/// corner, with the three scale-`s` detail bands in the adjacent quadrants.
///
/// The sample type is `f64` for the reference transform and raw `i64`
/// fixed-point words (with per-scale formats described by the word-length
/// plan) for the hardware-accurate transform.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition<T> {
    data: Vec<T>,
    width: usize,
    height: usize,
    scales: u32,
    filter: FilterId,
    input_bit_depth: u32,
}

impl<T: Copy> Decomposition<T> {
    /// Wraps a Mallat-layout buffer. Intended for the transform
    /// implementations in this crate; users normally obtain decompositions
    /// from [`Dwt2d::forward`](crate::Dwt2d::forward) or
    /// [`FixedDwt2d::forward`](crate::FixedDwt2d::forward).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not equal `width * height`.
    #[must_use]
    pub fn from_raw(
        data: Vec<T>,
        width: usize,
        height: usize,
        scales: u32,
        filter: FilterId,
        input_bit_depth: u32,
    ) -> Self {
        assert_eq!(data.len(), width * height, "buffer length must match dimensions");
        Self { data, width, height, scales, filter, input_bit_depth }
    }

    /// Width of the underlying layout (equals the source image width).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the underlying layout (equals the source image height).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of decomposition scales.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Filter bank that produced the decomposition.
    #[must_use]
    pub fn filter(&self) -> FilterId {
        self.filter
    }

    /// Bit depth of the source image (needed to rebuild it losslessly).
    #[must_use]
    pub fn input_bit_depth(&self) -> u32 {
        self.input_bit_depth
    }

    /// The whole Mallat-layout buffer, row major.
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the Mallat-layout buffer.
    #[must_use]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the decomposition, returning the raw buffer.
    #[must_use]
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Region of the layout occupied by `band` at `scale` (1-based).
    ///
    /// For [`Subband::Approx`] only `scale == scales()` is meaningful (the
    /// approximations of shallower scales have been overwritten by deeper
    /// ones), but the rectangle is still returned for any scale because the
    /// in-place transforms use it while iterating.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero or exceeds the decomposition depth.
    #[must_use]
    pub fn subband_rect(&self, scale: u32, band: Subband) -> SubbandRect {
        assert!(scale >= 1 && scale <= self.scales, "scale {scale} out of range");
        let w = self.width >> scale;
        let h = self.height >> scale;
        match band {
            Subband::Approx => SubbandRect { x: 0, y: 0, width: w, height: h },
            Subband::HorizontalDetail => SubbandRect { x: w, y: 0, width: w, height: h },
            Subband::VerticalDetail => SubbandRect { x: 0, y: h, width: w, height: h },
            Subband::DiagonalDetail => SubbandRect { x: w, y: h, width: w, height: h },
        }
    }

    /// Copies the samples of `band` at `scale` into a new vector
    /// (row major inside the band).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero or exceeds the decomposition depth.
    #[must_use]
    pub fn subband(&self, scale: u32, band: Subband) -> Vec<T> {
        let rect = self.subband_rect(scale, band);
        let mut out = Vec::with_capacity(rect.len());
        for y in rect.y..rect.y + rect.height {
            let row_start = y * self.width + rect.x;
            out.extend_from_slice(&self.data[row_start..row_start + rect.width]);
        }
        out
    }

    /// Sample at `(x, y)` of the full layout.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        self.data[y * self.width + x]
    }

    /// Applies `f` to every sample of the layout, producing a new
    /// decomposition with the same geometry.
    #[must_use]
    pub fn map<U: Copy, F: FnMut(T) -> U>(&self, mut f: F) -> Decomposition<U> {
        Decomposition {
            data: self.data.iter().map(|&v| f(v)).collect(),
            width: self.width,
            height: self.height,
            scales: self.scales,
            filter: self.filter,
            input_bit_depth: self.input_bit_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_decomposition() -> Decomposition<f64> {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        Decomposition::from_raw(data, 8, 8, 2, FilterId::F1, 12)
    }

    #[test]
    fn accessors_report_geometry() {
        let d = sample_decomposition();
        assert_eq!(d.width(), 8);
        assert_eq!(d.height(), 8);
        assert_eq!(d.scales(), 2);
        assert_eq!(d.filter(), FilterId::F1);
        assert_eq!(d.input_bit_depth(), 12);
        assert_eq!(d.data().len(), 64);
    }

    #[test]
    fn subband_rects_tile_each_scale() {
        let d = sample_decomposition();
        // Scale 1 splits the 8x8 layout into four 4x4 quadrants.
        let a = d.subband_rect(1, Subband::Approx);
        let h = d.subband_rect(1, Subband::HorizontalDetail);
        let v = d.subband_rect(1, Subband::VerticalDetail);
        let g = d.subband_rect(1, Subband::DiagonalDetail);
        assert_eq!((a.x, a.y, a.width, a.height), (0, 0, 4, 4));
        assert_eq!((h.x, h.y), (4, 0));
        assert_eq!((v.x, v.y), (0, 4));
        assert_eq!((g.x, g.y), (4, 4));
        assert_eq!(a.len() + h.len() + v.len() + g.len(), 64);
        // Scale 2 subbands are 2x2.
        assert_eq!(d.subband_rect(2, Subband::DiagonalDetail).len(), 4);
    }

    #[test]
    fn subband_extraction_matches_layout() {
        let d = sample_decomposition();
        let hd = d.subband(1, Subband::HorizontalDetail);
        // First row of the top-right quadrant of an 8-wide row-major ramp.
        assert_eq!(&hd[0..4], &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(hd.len(), 16);
    }

    #[test]
    fn get_and_map_work() {
        let d = sample_decomposition();
        assert_eq!(d.get(3, 2), 19.0);
        let doubled = d.map(|v| (v * 2.0) as i64);
        assert_eq!(doubled.get(3, 2), 38);
        assert_eq!(doubled.scales(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scale_zero_rejected() {
        let d = sample_decomposition();
        let _ = d.subband_rect(0, Subband::Approx);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn mismatched_buffer_rejected() {
        let _ = Decomposition::from_raw(vec![0.0; 10], 8, 8, 1, FilterId::F1, 12);
    }

    #[test]
    fn paper_symbols() {
        assert_eq!(Subband::Approx.paper_symbol(), "dHH");
        assert_eq!(Subband::DiagonalDetail.to_string(), "dGG");
        assert_eq!(Subband::DETAILS.len(), 3);
    }
}
