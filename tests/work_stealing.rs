//! Multi-thread stress tests of the work-stealing scheduler: every task —
//! injected or locally split — executes exactly once under contention, work
//! parked on a busy worker's deque migrates to idle workers, and the steal
//! path's latency is bounded by the condvar handshake, not by the busy
//! owner's task length.

use lwc_server::sched::WorkStealing;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A task is its slot index; splitting tasks carry the worker push budget.
enum Stress {
    /// Flip slot `0` exactly once.
    Leaf(usize),
    /// Flip slot `0`, then split `1` leaf subtasks onto the running worker.
    Split(usize, usize),
}

#[test]
fn every_task_executes_exactly_once_under_contention() {
    const WORKERS: usize = 4;
    const INJECTED: usize = 200;
    const SPLITS: usize = 3; // each injected task spawns this many leaves
    let total = INJECTED * (1 + SPLITS);

    let pool: Arc<WorkStealing<Stress>> = Arc::new(WorkStealing::new(WORKERS));
    let seen: Arc<Vec<AtomicBool>> = Arc::new((0..total).map(|_| AtomicBool::new(false)).collect());
    let next_leaf = Arc::new(AtomicUsize::new(INJECTED));

    let runners: Vec<_> = (0..WORKERS)
        .map(|worker| {
            let pool = Arc::clone(&pool);
            let seen = Arc::clone(&seen);
            let next_leaf = Arc::clone(&next_leaf);
            thread::spawn(move || {
                pool.run(worker, |w, task| {
                    let slot = match task {
                        Stress::Leaf(slot) => slot,
                        Stress::Split(slot, leaves) => {
                            for _ in 0..leaves {
                                let leaf = next_leaf.fetch_add(1, Ordering::Relaxed);
                                pool.push_local(w, Stress::Leaf(leaf));
                            }
                            slot
                        }
                    };
                    let already = seen[slot].swap(true, Ordering::SeqCst);
                    assert!(!already, "task {slot} executed twice");
                });
            })
        })
        .collect();

    // Two producer threads inject concurrently with execution and splits.
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                for i in (p..INJECTED).step_by(2) {
                    assert!(
                        pool.inject(Stress::Split(i, SPLITS)).is_ok(),
                        "scheduler closed while producing"
                    );
                }
            })
        })
        .collect();
    for producer in producers {
        producer.join().unwrap();
    }
    pool.close();
    for runner in runners {
        runner.join().unwrap();
    }

    let executed: usize = seen.iter().filter(|s| s.load(Ordering::SeqCst)).count();
    assert_eq!(executed, total, "every injected task and split leaf ran");
    let per_worker: u64 = (0..WORKERS).map(|w| pool.executed(w)).sum();
    assert_eq!(per_worker, total as u64, "execution tally agrees");
}

#[test]
fn parked_work_migrates_to_idle_workers() {
    const WORKERS: usize = 4;
    const TASKS: usize = 64;
    let pool: Arc<WorkStealing<usize>> = Arc::new(WorkStealing::new(WORKERS));
    // All tasks sit in worker 0's deque, but worker 0 never runs: the other
    // three must steal everything.
    for task in 0..TASKS {
        pool.push_local(0, task);
    }
    pool.close();
    let runners: Vec<_> = (1..WORKERS)
        .map(|worker| {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let mut mine = Vec::new();
                pool.run(worker, |_, task| {
                    mine.push(task);
                    // A touch of work so no single thief drains the deque
                    // before its peers wake.
                    thread::sleep(Duration::from_micros(200));
                });
                mine
            })
        })
        .collect();
    let mut all: Vec<usize> = Vec::new();
    for runner in runners {
        all.extend(runner.join().unwrap());
    }
    all.sort_unstable();
    assert_eq!(all, (0..TASKS).collect::<Vec<_>>());
    assert_eq!(pool.steals(), TASKS as u64, "every execution was a steal");
    assert!(pool.active_workers() >= 2, "the load spread beyond one thief");
}

#[test]
fn steal_latency_is_bounded_by_the_wakeup_handshake_not_the_owner() {
    // Worker 0 is stuck in a long task; a task pushed onto its deque must be
    // stolen by the idle worker 1 promptly — the condvar wakeup (or at worst
    // one 10 ms idle rescan), not the ~300 ms the owner still needs.
    let pool: Arc<WorkStealing<Box<dyn FnOnce() + Send>>> = Arc::new(WorkStealing::new(2));
    let runners: Vec<_> = (0..2)
        .map(|worker| {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.run(worker, |_, task| task()))
        })
        .collect();

    let gate = Arc::new(AtomicBool::new(false));
    {
        let gate = Arc::clone(&gate);
        pool.push_local(
            0,
            Box::new(move || {
                while !gate.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                }
            }),
        );
    }
    // Give worker 0 a moment to pick up the blocker.
    thread::sleep(Duration::from_millis(50));

    let elapsed: Arc<Mutex<Option<Duration>>> = Arc::new(Mutex::new(None));
    {
        let elapsed = Arc::clone(&elapsed);
        let pushed = Instant::now();
        pool.push_local(
            0,
            Box::new(move || {
                *elapsed.lock().unwrap() = Some(pushed.elapsed());
            }),
        );
    }
    // The probe task can only run via worker 1 stealing it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while elapsed.lock().unwrap().is_none() {
        assert!(Instant::now() < deadline, "probe task never stolen");
        thread::sleep(Duration::from_millis(1));
    }
    gate.store(true, Ordering::SeqCst);
    pool.close();
    for runner in runners {
        runner.join().unwrap();
    }
    let latency = elapsed.lock().unwrap().expect("probe ran");
    assert!(pool.steals() >= 1, "the probe must have been stolen");
    // Generous CI bound: the handshake is microseconds, the idle-rescan
    // backstop 10 ms; 150 ms means wakeups are fundamentally broken.
    assert!(latency < Duration::from_millis(150), "steal took {latency:?}");
}
