//! Integration tests that pin the regenerated tables/figures to the paper's
//! printed values (exact where the quantity is pure arithmetic, in shape
//! where it depends on the substituted technology model).

use lwc_core::reproduction;

#[test]
fn table1_filter_banks_match_the_printed_metrics() {
    let rows = reproduction::table1();
    assert_eq!(rows.len(), 6);
    let expected_lengths = [(9, 7), (13, 11), (6, 10), (5, 3), (2, 6), (9, 3)];
    // Printed 6-decimal values from Table I, kept verbatim (1.414214 is the
    // paper's rounding of sqrt(2), not the f64 constant).
    #[allow(clippy::approx_constant)]
    let expected_abs_sums = [1.952105, 1.857495, 1.930526, 2.121320, 1.414214, 2.386485];
    for ((row, (la, ls)), abs_sum) in rows.iter().zip(expected_lengths).zip(expected_abs_sums) {
        assert_eq!(row.metrics.analysis_len, la, "{}", row.id);
        assert_eq!(row.metrics.synthesis_len, ls, "{}", row.id);
        assert!(
            (row.metrics.analysis_lowpass_abs_sum - abs_sum).abs() < 5e-5,
            "{}: Σ|h| = {}",
            row.id,
            row.metrics.analysis_lowpass_abs_sum
        );
        assert!(row.biorthogonality.is_biorthogonal(5e-5), "{}", row.id);
    }
}

#[test]
fn table2_integer_parts_match_exactly() {
    let t2 = reproduction::table2();
    assert!(t2.matches_paper(), "computed: {:?}", t2.computed);
}

#[test]
fn table3_keeps_the_papers_area_ranking_and_gap() {
    let rows = reproduction::table3();
    assert_eq!(rows.len(), 5);
    let proposed = rows.last().unwrap();
    assert!((proposed.cost.total_area_mm2() - 11.2).abs() < 0.5);
    for row in &rows[..4] {
        // Reconstructed formulas land within a third of the printed areas…
        assert!(row.area_deviation().unwrap().abs() < 0.35, "{}", row.cost.class);
        // …and the proposed design stays more than an order of magnitude
        // smaller, which is the conclusion the table supports.
        assert!(row.cost.total_area_mm2() / proposed.cost.total_area_mm2() > 12.0);
    }
}

#[test]
fn table4_buffer_rounds_match_exactly() {
    let t4 = reproduction::table4().unwrap();
    assert_eq!(t4.spec.minimum_words, 25);
    assert_eq!(t4.spec.words, 32);
    let rounds: Vec<usize> = t4.rounds.iter().map(|&(_, _, r)| r).collect();
    assert_eq!(rounds, t4.paper_rounds.to_vec());
}

#[test]
fn table5_multiplier_design_points_match_exactly() {
    let t5 = reproduction::table5();
    assert_eq!(t5[0].access_time_ns, 50.88);
    assert_eq!(t5[0].area_mm2, 2.92);
    assert_eq!(t5[1].access_time_ns, 23.45);
    assert_eq!(t5[1].area_mm2, 8.03);
    assert!(!t5[0].meets_clock(25.0));
    assert!(t5[1].meets_clock(25.0));
}

#[test]
fn table6_fifo_bounds_match_exactly() {
    let t6 = reproduction::table6();
    assert!(t6.matches_paper());
}

#[test]
fn eq2_mac_count_and_pentium_time_match_within_tolerance() {
    let e = reproduction::eq2();
    assert!((e.total as f64 - e.paper_total).abs() / e.paper_total < 0.02);
    assert!((e.pentium_seconds - 42.0).abs() < 1.0);
    assert_eq!(e.per_scale.len(), 6);
    assert_eq!(e.per_scale[0], 512 * 512 * 26);
}

#[test]
fn fig2_schedule_and_utilization_match() {
    let f = reproduction::fig2();
    assert_eq!(f.normal.len(), 13);
    assert_eq!(f.normal.busy_cycles(), 13);
    assert_eq!(f.with_refresh.len(), 19);
    assert_eq!(f.with_refresh.busy_cycles(), 13);
    assert!((f.utilization - f.paper_utilization).abs() < 0.002);
}

#[test]
fn conclusions_figures_have_the_papers_shape() {
    // A 128x128 run keeps the test fast; utilization and per-pixel cycle cost
    // are size independent, and the speedup compares like for like.
    let c = reproduction::conclusions(128).unwrap();
    assert!((c.arch_report.utilization() - c.paper.utilization).abs() < 0.002);
    assert!((c.proposed_area_mm2 - c.paper.area_mm2).abs() < 1.0);
    assert!(
        (c.throughput.speedup - c.paper.speedup).abs() / c.paper.speedup < 0.15,
        "speedup {:.0}",
        c.throughput.speedup
    );
}

#[test]
fn lossless_summary_is_exact_for_every_bank() {
    for (id, exact) in reproduction::lossless_summary(64, 4).unwrap() {
        assert!(exact, "{id}");
    }
}
