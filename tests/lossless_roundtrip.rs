//! Integration tests for the headline claim of the paper: with 32-bit
//! fixed-point words and per-scale integer parts, the forward + inverse DWT
//! reproduces the input image exactly.

use lwc_core::prelude::*;

/// The paper's own validation workload: random images.
#[test]
fn random_images_roundtrip_losslessly_with_every_bank() {
    let image = synth::random_image(128, 128, 12, 4242);
    for id in FilterId::ALL {
        let report = lwc_core::verify_lossless(&image, id, 6).unwrap();
        assert!(report.bit_exact, "{id}: {report}");
    }
}

/// Medical-like content (the motivating application).
#[test]
fn phantom_studies_roundtrip_losslessly() {
    for (name, image) in [
        ("ct", synth::ct_phantom(128, 128, 12, 1)),
        ("mr", synth::mr_slice(128, 128, 12, 2)),
        ("gradient", synth::gradient(128, 128, 12)),
        ("checkerboard", synth::checkerboard(128, 128, 12, 1)),
        ("flat", synth::flat(128, 128, 12, 2048)),
    ] {
        for id in [FilterId::F1, FilterId::F2, FilterId::F4] {
            let report = lwc_core::verify_lossless(&image, id, 5).unwrap();
            assert!(report.bit_exact, "{name} with {id}: {report}");
        }
    }
}

/// Worst-case amplitudes: every pixel at the extremes of the 12-bit range.
#[test]
fn extreme_amplitude_images_do_not_overflow_the_datapath() {
    let bright = synth::flat(64, 64, 12, 4095);
    let dark = synth::flat(64, 64, 12, 0);
    let harsh = synth::checkerboard(64, 64, 12, 1);
    for id in FilterId::ALL {
        for image in [&bright, &dark, &harsh] {
            let report = lwc_core::verify_lossless(image, id, 6).unwrap();
            assert!(report.bit_exact, "{id}");
        }
    }
}

/// The floating-point reference transform also reconstructs exactly after
/// rounding, and its coefficients agree with the fixed-point ones to within
/// a fraction of a quantization step.
#[test]
fn fixed_point_coefficients_track_the_floating_point_reference() {
    let image = synth::ct_phantom(64, 64, 12, 9);
    let bank = FilterBank::table1(FilterId::F1);
    let float = Dwt2d::new(bank.clone(), 4).unwrap();
    let fixed = FixedDwt2d::paper_default(&bank, 4).unwrap();
    let reference = float.forward(&image).unwrap();
    let hardware = fixed.forward(&image).unwrap();
    let lsb = (fixed.plan().frac_bits_for_scale(4) as f64).exp2().recip();
    for band in [Subband::Approx, Subband::DiagonalDetail] {
        let r = reference.subband(4, band);
        let h = hardware.subband(4, band);
        for (rv, hv) in r.iter().zip(&h) {
            let value = *hv as f64 * lsb;
            assert!((value - rv).abs() < 0.02, "{band}: fixed {value} vs reference {rv}");
        }
    }
    assert!(stats::bit_exact(&image, &float.inverse(&reference).unwrap()).unwrap());
}

/// Twelve-bit inputs are the paper's case, but shallower medical data (8- and
/// 10-bit) must round-trip as well.
#[test]
fn other_bit_depths_roundtrip() {
    for depth in [8, 10, 12] {
        let image = synth::random_image(64, 64, depth, depth as u64);
        let report = lwc_core::verify_lossless(&image, FilterId::F3, 4).unwrap();
        assert!(report.bit_exact, "{depth}-bit");
    }
}

/// The reversible integer lifting baseline is lossless by construction and
/// must agree with the original exactly too.
#[test]
fn lifting_baseline_is_also_lossless() {
    let image = synth::mr_slice(128, 128, 12, 3);
    let lifting = Lifting53::new(5).unwrap();
    let restored = lifting.roundtrip(&image).unwrap();
    assert!(stats::bit_exact(&image, &restored).unwrap());
}

/// Rectangular (non-square) images exercise the row/column passes with
/// different lengths.
#[test]
fn rectangular_images_roundtrip() {
    let image = synth::random_image(128, 64, 12, 77);
    for id in [FilterId::F2, FilterId::F5] {
        let report = lwc_core::verify_lossless(&image, id, 4).unwrap();
        assert!(report.bit_exact, "{id}");
    }
}
