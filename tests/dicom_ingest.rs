//! Fuzz-shaped tests of the DICOM ingest path: the parser must answer every
//! malformed, truncated or hostile stream with a typed error — never a
//! panic, a hang or an oversized allocation — and well-formed objects must
//! roundtrip bit-exactly through the fixture writer in both supported
//! transfer syntaxes, then through the compression engines.

use lwc_core::prelude::*;

/// Deterministic pseudo-random bytes (splitmix64) so the hostile-input
/// sweeps are reproducible without any RNG plumbing.
fn pseudo_random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let mut z = state;
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    out
}

fn fixture(depth: usize) -> ImageStack {
    let slices: Vec<Image> = (0..depth).map(|z| synth::ct_phantom(48, 36, 12, z as u64)).collect();
    ImageStack::from_slices(&slices).unwrap()
}

#[test]
fn well_formed_objects_roundtrip_in_both_transfer_syntaxes() {
    for depth in [1usize, 4] {
        let stack = fixture(depth);
        for explicit in [true, false] {
            for signed in [false, true] {
                let bytes = dicom::encode(&stack, explicit, signed).unwrap();
                let parsed = dicom::parse(&bytes).unwrap();
                assert_eq!(parsed.stack, stack, "depth={depth} explicit={explicit}");
                assert_eq!(parsed.signed, signed);
                assert_eq!(parsed.bits_stored, 12);
            }
        }
    }
}

#[test]
fn parsed_frames_compress_losslessly_end_to_end() {
    // Ingest → compress → decompress → the exact stored values: the whole
    // corpus path on one in-memory object.
    let stack = fixture(3);
    let bytes = dicom::encode(&stack, true, false).unwrap();
    let parsed = dicom::parse(&bytes).unwrap();
    let engine = TiledCompressor::new(3, 32, 2).unwrap();
    for z in 0..parsed.stack.depth() {
        let frame = parsed.stack.slice_image(z).unwrap();
        let back = engine.decompress(&engine.compress(&frame).unwrap()).unwrap();
        assert!(stats::bit_exact(&frame, &back).unwrap(), "frame {z}");
    }
}

#[test]
fn random_prefixes_of_every_length_are_rejected_before_allocation() {
    // 0..64 bytes of noise — shorter than the 132-byte preamble+magic — must
    // be rejected by the cheap structural check, for every length and
    // several seeds.
    for seed in 0..8u64 {
        for len in 0..64usize {
            let junk = pseudo_random_bytes(seed, len);
            assert!(!dicom::is_dicom(&junk));
            match dicom::parse(&junk) {
                Err(ImageError::MalformedDicom(_)) => {}
                other => panic!("seed {seed} len {len}: expected MalformedDicom, got {other:?}"),
            }
        }
    }
    // Noise that *does* carry the magic still dies with a typed error at the
    // first implausible element, never a panic.
    for seed in 0..32u64 {
        let mut junk = pseudo_random_bytes(seed, 512);
        junk[128..132].copy_from_slice(b"DICM");
        match dicom::parse(&junk) {
            Err(ImageError::MalformedDicom(_) | ImageError::UnsupportedDicom(_)) => {}
            other => panic!("seed {seed}: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn every_truncation_point_of_a_valid_object_is_a_typed_error() {
    let bytes = dicom::encode(&fixture(2), true, false).unwrap();
    // Exhaustive over the header region, sampled through the pixel data.
    let mut cuts: Vec<usize> = (0..256.min(bytes.len())).collect();
    cuts.extend((256..bytes.len()).step_by(97));
    for cut in cuts {
        match dicom::parse(&bytes[..cut]) {
            Err(ImageError::MalformedDicom(_)) => {}
            other => panic!("cut at {cut}: expected MalformedDicom, got {other:?}"),
        }
    }
}

#[test]
fn forged_element_lengths_are_refused_with_named_errors() {
    let stack = fixture(1);
    let bytes = dicom::encode(&stack, true, false).unwrap();
    let pixel_tag = [0xE0u8, 0x7F, 0x10, 0x00];
    let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == pixel_tag).unwrap();

    // A length reaching past the end of the stream.
    let mut forged = bytes.clone();
    forged[at + 8..at + 12].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
    match dicom::parse(&forged) {
        Err(ImageError::MalformedDicom(msg)) => {
            assert!(msg.contains("claims"), "length forgery names the claim: {msg}");
        }
        other => panic!("expected MalformedDicom, got {other:?}"),
    }

    // The undefined-length sentinel (encapsulated pixel data).
    let mut forged = bytes.clone();
    forged[at + 8..at + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(dicom::parse(&forged), Err(ImageError::UnsupportedDicom(_))));

    // A length that fits the stream but contradicts Rows x Columns: the
    // consistency check fires instead of a misshapen image appearing.
    let mut forged = bytes.clone();
    let shortened = (forged.len() - at - 12 - 2) as u32;
    forged[at + 8..at + 12].copy_from_slice(&shortened.to_le_bytes());
    forged.truncate(at + 12 + shortened as usize);
    assert!(matches!(dicom::parse(&forged), Err(ImageError::MalformedDicom(_))));

    // A lowercase (implausible) VR on a dataset element.
    let rows_tag = [0x28u8, 0x00, 0x10, 0x00];
    let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == rows_tag).unwrap();
    let mut forged = bytes.clone();
    forged[at + 4] = b'u'; // "uS"
    match dicom::parse(&forged) {
        Err(ImageError::MalformedDicom(msg)) => assert!(msg.contains("VR"), "{msg}"),
        other => panic!("expected MalformedDicom, got {other:?}"),
    }
}

#[test]
fn zero_dimensions_and_hostile_geometry_never_allocate() {
    let stack = fixture(1);
    let bytes = dicom::encode(&stack, true, false).unwrap();
    let tag = |group: u16, element: u16| {
        let mut t = [0u8; 4];
        t[..2].copy_from_slice(&group.to_le_bytes());
        t[2..].copy_from_slice(&element.to_le_bytes());
        t
    };
    for (name, tag_bytes, value) in [
        ("zero rows", tag(0x0028, 0x0010), 0u16),
        ("zero columns", tag(0x0028, 0x0011), 0u16),
        ("huge rows", tag(0x0028, 0x0010), u16::MAX),
        ("huge columns", tag(0x0028, 0x0011), u16::MAX),
        ("zero bits stored", tag(0x0028, 0x0101), 0u16),
        ("bits stored over allocated", tag(0x0028, 0x0101), 17u16),
    ] {
        let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == tag_bytes).unwrap();
        let mut forged = bytes.clone();
        forged[at + 8..at + 10].copy_from_slice(&value.to_le_bytes());
        assert!(
            matches!(dicom::parse(&forged), Err(ImageError::MalformedDicom(_))),
            "{name} must be a typed error"
        );
    }
    // Bits allocated outside {8, 16} is out of subset, not out of spec.
    let at = (0..bytes.len() - 4).find(|&i| bytes[i..i + 4] == tag(0x0028, 0x0100)).unwrap();
    let mut forged = bytes.clone();
    forged[at + 8..at + 10].copy_from_slice(&32u16.to_le_bytes());
    assert!(matches!(dicom::parse(&forged), Err(ImageError::UnsupportedDicom(_))));

    // A forged frame count that multiplies past the real pixel length.
    let multi = dicom::encode(&fixture(4), true, false).unwrap();
    let at = (0..multi.len() - 4).find(|&i| multi[i..i + 4] == tag(0x0028, 0x0008)).unwrap();
    let mut forged = multi.clone();
    forged[at + 8] = b'9'; // "9" instead of "4"
    assert!(matches!(dicom::parse(&forged), Err(ImageError::MalformedDicom(_))));
}

#[test]
fn file_io_wrappers_roundtrip_on_disk() {
    let dir = std::env::temp_dir().join("lwc_dicom_ingest_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("phantom.dcm");
    let stack = fixture(2);
    dicom::save(&path, &stack, true, false).unwrap();
    let loaded = dicom::load(&path).unwrap();
    assert_eq!(loaded.stack, stack);
    std::fs::remove_dir_all(&dir).ok();
}
