//! End-to-end tests of the compression service over real loopback sockets:
//!
//! * a 16-bit PGM compressed through the server decompresses — whole-image
//!   and single-tile ops — to pixels byte-identical to the sequential
//!   [`LosslessCodec`] path, across 1/2/4 worker pools,
//! * pipelined multi-request submission completes every request,
//! * malformed payloads, short sniff buffers, unknown ops, oversized frames
//!   and bad magic all come back as typed errors (or a closed connection for
//!   unrecoverable framing), never hangs or panics,
//! * an exhausted in-flight budget — global or per-connection — answers
//!   `busy` rather than buffering unboundedly,
//! * the optional response cache answers repeats byte-identically (and a
//!   disabled cache matches those bytes exactly),
//! * stats report the work done and graceful shutdown leaves clients with a
//!   clean disconnect.

use lwc_core::prelude::*;
use lwc_server::{ErrorCode, Frame, Op, PROTOCOL_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Accumulates bytes off a raw socket until one whole frame decodes (a
/// single `read` may legally return a partial frame).
fn read_reply_frame(stream: &mut TcpStream) -> Frame {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        match Frame::decode(&buf, 1 << 20) {
            Ok((frame, _)) => return frame,
            Err(_) => {
                let n = stream.read(&mut chunk).expect("reply read");
                assert!(n > 0, "connection closed before a full reply frame");
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

fn test_server(workers: usize, queue_depth: usize) -> Server {
    let config = ServerConfig {
        workers,
        queue_depth,
        scales: 3,
        tile_size: 32,
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config).expect("bind loopback")
}

#[test]
fn sixteen_bit_roundtrip_matches_the_sequential_codec_across_worker_counts() {
    // The acceptance path: a 16-bit PGM through the server, whole-image and
    // single-tile decompression, pixels byte-identical to the sequential
    // LosslessCodec on the same tiles.
    let image = synth::random_image(80, 60, 16, 7);
    for workers in [1usize, 2, 4] {
        let server = test_server(workers, 8);
        let mut client = Client::connect(server.local_addr()).expect("connect");

        let stream = client.compress_image(&image).expect("compress");
        // The server compresses deterministically: its bytes are exactly the
        // tiled engine's (32-pixel tiles, 3 scales, worker-count-free).
        let reference_engine =
            TiledCompressor::with_codec(LosslessCodec::new(3).unwrap(), 32, 32, 1).unwrap();
        assert_eq!(stream, reference_engine.compress(&image).unwrap(), "{workers} workers");

        // Whole-image decompression through the server.
        let back = client.decompress(&stream).expect("decompress");
        assert_eq!(back.samples(), image.samples(), "{workers} workers");
        assert_eq!(back.bit_depth(), 16);

        // Single-tile decompression: every tile equals the sequential
        // codec's decode of that tile's crop.
        let grid = reference_engine.grid(80, 60).unwrap();
        for index in [0, grid.tile_count() - 1] {
            let tile = client.decompress_tile(&stream, index as u32).expect("tile");
            let expected = image.crop(grid.rect(index)).unwrap();
            assert!(stats::bit_exact(&expected, &tile).unwrap(), "tile {index}");
        }
        // And an out-of-range tile is a typed remote error.
        let err = client.decompress_tile(&stream, grid.tile_count() as u32).unwrap_err();
        assert!(
            matches!(err, ServerError::Remote { code: ErrorCode::TileIndexOutOfRange, .. }),
            "{err}"
        );
    }
}

#[test]
fn fixed_path_lwcf_streams_roundtrip_through_the_server() {
    // E2E regression for the paper-exact codec: an `LWCF` stream produced
    // locally decompresses through the existing LWCP ops — whole image and
    // single tile — with the server sniffing the third magic.
    let image = synth::random_image(64, 64, 12, 13);
    let bank = FilterBank::table1(FilterId::F2);
    let engine = TiledFixedCompressor::new(&bank, 3, 32, 1).unwrap();
    let stream = engine.compress(&image).unwrap();

    let server = test_server(2, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Whole-image decompression through the server.
    let back = client.decompress(&stream).expect("decompress LWCF");
    assert_eq!(back.samples(), image.samples());

    // Single-tile decompression agrees with the local engine per tile.
    let grid = engine.grid(64, 64).unwrap();
    for index in [0, grid.tile_count() - 1] {
        let tile = client.decompress_tile(&stream, index as u32).expect("tile");
        let expected = image.crop(grid.rect(index)).unwrap();
        assert!(stats::bit_exact(&expected, &tile).unwrap(), "tile {index}");
    }
    // Out-of-range tile index: the same typed error as the lifting path.
    let err = client.decompress_tile(&stream, grid.tile_count() as u32).unwrap_err();
    assert!(
        matches!(err, ServerError::Remote { code: ErrorCode::TileIndexOutOfRange, .. }),
        "{err}"
    );

    // Sniff hardening: every 0..8-byte prefix of an LWCF stream — which
    // includes the full magic with a truncated header — answers a typed
    // BadPayload, never a panic or hang.
    for len in 0..8usize {
        let err = client.decompress(&stream[..len]).unwrap_err();
        assert!(
            matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }),
            "{len}-byte LWCF prefix: {err}"
        );
        let err = client.decompress_tile(&stream[..len], 0).unwrap_err();
        assert!(
            matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }),
            "{len}-byte LWCF prefix (tile): {err}"
        );
    }
    // The connection survived the whole gauntlet.
    assert!(client.stats().expect("stats").contains("\"completed_requests\""));
}

#[test]
fn pipelined_requests_all_complete_in_request_order() {
    let server = test_server(2, 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let images: Vec<Image> = (0..6).map(|k| synth::ct_phantom(48, 40, 12, k)).collect();
    let requests: Vec<(Op, Vec<u8>)> = images
        .iter()
        .map(|image| {
            let mut payload = Vec::new();
            pgm::write_pgm(image, &mut payload).unwrap();
            (Op::Compress, payload)
        })
        .collect();
    let results = client.pipeline(requests).expect("pipeline");
    assert_eq!(results.len(), images.len());
    let codec = TiledCompressor::with_codec(LosslessCodec::new(3).unwrap(), 32, 32, 1).unwrap();
    for (image, result) in images.iter().zip(results) {
        let stream = result.expect("per-request success");
        assert_eq!(stream, codec.compress(image).unwrap());
    }
    let stats = server.stats();
    assert_eq!(stats.completed_requests, images.len() as u64);
    assert_eq!(stats.rejected_busy, 0);
}

#[test]
fn short_and_malformed_payloads_are_typed_remote_errors() {
    let server = test_server(1, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // 0..8-byte decompress payloads — the magic-sniffing path server-side —
    // must answer BadPayload, never crash the worker or hang the client.
    for len in 0..8usize {
        let err = client.decompress(&vec![0x4C; len]).unwrap_err();
        assert!(
            matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }),
            "{len}-byte payload: {err}"
        );
    }
    // Same for decompress-tile, whose payload embeds the stream after the
    // index prefix (an absent prefix is also a typed error).
    let err = client.decompress_tile(&[], 0).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    let err = client.request(Op::DecompressTile, vec![0, 0]).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    // Garbage PGM for compress.
    let err = client.compress(b"not a pgm").unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    // The connection survived all of it.
    let stats = client.stats().expect("stats still works");
    assert!(stats.contains("\"error_replies\""), "{stats}");
}

#[test]
fn unknown_ops_oversized_frames_and_bad_magic_are_refused() {
    let server = test_server(1, 4);

    // Unknown op: replied with a typed error, connection stays usable.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut raw = Frame { op: Op::Stats, request_id: 42, payload: vec![] }.encode();
    raw[5] = 0x6E; // not an op this build knows
    stream.write_all(&raw).unwrap();
    let frame = read_reply_frame(&mut stream);
    let (code, _) = frame.error_info().expect("typed error");
    assert_eq!(code, ErrorCode::UnknownOp);
    assert_eq!(frame.request_id, 42);

    // A declared payload beyond the limit: error frame, then the server
    // closes (the frame boundary is lost).
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut huge = Frame { op: Op::Compress, request_id: 7, payload: vec![] }.encode();
    huge[14..18].copy_from_slice(&u32::MAX.to_be_bytes());
    stream.write_all(&huge).unwrap();
    let frame = read_reply_frame(&mut stream);
    assert_eq!(frame.error_info().expect("typed").0, ErrorCode::FrameTooLarge);
    assert_eq!(frame.request_id, 7, "the reply echoes the oversized frame's request id");

    // Bad magic: error frame then close.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(&[0u8; 32]).unwrap();
    let frame = read_reply_frame(&mut stream);
    assert_eq!(frame.error_info().expect("typed").0, ErrorCode::MalformedFrame);

    // Wrong protocol version: typed refusal.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut versioned = Frame { op: Op::Stats, request_id: 1, payload: vec![] }.encode();
    versioned[4] = PROTOCOL_VERSION + 9;
    stream.write_all(&versioned).unwrap();
    let frame = read_reply_frame(&mut stream);
    assert_eq!(frame.error_info().expect("typed").0, ErrorCode::UnsupportedVersion);
}

#[test]
fn a_full_queue_pushes_back_with_busy_instead_of_buffering() {
    // One worker, a queue of one, and a flood of pipelined requests: the
    // server must answer every frame — some Ok, some Busy — and the tallies
    // must account for every request. (Which requests go busy is timing
    // dependent; that *none* are silently dropped is not.)
    let server = test_server(1, 1);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let image = synth::ct_phantom(64, 64, 12, 5);
    let mut payload = Vec::new();
    pgm::write_pgm(&image, &mut payload).unwrap();
    let total = 24usize;
    let requests: Vec<(Op, Vec<u8>)> =
        (0..total).map(|_| (Op::Compress, payload.clone())).collect();
    let results = client.pipeline(requests).expect("pipeline");
    assert_eq!(results.len(), total);
    let mut ok = 0u64;
    let mut busy = 0u64;
    for result in results {
        match result {
            Ok(_) => ok += 1,
            Err(e) if e.is_busy() => busy += 1,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(ok > 0, "at least some requests must complete");
    assert_eq!(ok + busy, total as u64);
    let stats = server.stats();
    assert_eq!(stats.completed_requests, ok);
    assert_eq!(stats.rejected_busy, busy);
}

#[test]
fn per_connection_cap_answers_busy_without_spending_the_global_budget() {
    // A generous global budget but a per-connection cap of 2: a pipelined
    // flood on one connection must see `busy` from the *connection* limit
    // (the global budget of 64 cannot be the cause for 24 requests), and
    // every request must still be answered.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 64,
        conn_inflight: 2,
        scales: 3,
        tile_size: 32,
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let image = synth::ct_phantom(64, 64, 12, 5);
    let mut payload = Vec::new();
    pgm::write_pgm(&image, &mut payload).unwrap();
    let total = 24usize;
    let requests: Vec<(Op, Vec<u8>)> =
        (0..total).map(|_| (Op::Compress, payload.clone())).collect();
    let results = client.pipeline(requests).expect("pipeline");
    let mut ok = 0u64;
    let mut busy = 0u64;
    for result in results {
        match result {
            Ok(_) => ok += 1,
            Err(ServerError::Remote { code: ErrorCode::Busy, message }) => {
                assert!(
                    message.contains("connection pipeline limit"),
                    "busy must name the per-connection cap, got: {message}"
                );
                busy += 1;
            }
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(ok >= 2, "at least the capped window completes");
    assert!(busy > 0, "a 24-deep pipeline must trip a cap of 2");
    assert_eq!(ok + busy, total as u64);
    let stats = server.stats();
    assert_eq!(stats.completed_requests, ok);
    assert_eq!(stats.rejected_busy, busy);
    // A second connection is not starved by the first one's rejections.
    let mut fresh = Client::connect(server.local_addr()).expect("connect");
    fresh.compress_image(&image).expect("fresh connection serves");
}

#[test]
fn response_cache_serves_repeats_byte_identically_and_counts_hits() {
    let image = synth::random_image(80, 60, 16, 11);
    let cached_config = ServerConfig {
        workers: 2,
        cache_entries: 32,
        scales: 3,
        tile_size: 32,
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cached_config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Identical compress payload twice: the second answer comes from the
    // cache and must be byte-identical to the first (which is itself the
    // deterministic engine output).
    let first = client.compress_image(&image).expect("compress (miss)");
    let second = client.compress_image(&image).expect("compress (hit)");
    assert_eq!(first, second);
    // Same for decompress of the produced stream.
    let once = client.decompress(&first).expect("decompress (miss)");
    let twice = client.decompress(&first).expect("decompress (hit)");
    assert_eq!(once.samples(), twice.samples());
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 2, "one compress hit, one decompress hit");
    assert_eq!(stats.cache_misses, 2, "one compress miss, one decompress miss");
    assert_eq!(stats.completed_requests, 4);

    // Cache disabled (the default): byte-identical responses to the cached
    // path — the cache is an exact shortcut, never a different answer.
    let server = test_server(2, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.compress_image(&image).expect("uncached compress"), first);
    let plain = client.decompress(&first).expect("uncached decompress");
    assert_eq!(plain.samples(), once.samples());
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0, "a disabled cache counts nothing");
}

#[test]
fn graceful_shutdown_disconnects_clients_and_joins_threads() {
    let mut server = test_server(2, 8);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let image = synth::mr_slice(40, 40, 12, 1);
    client.compress_image(&image).expect("request before shutdown");
    server.shutdown();
    // Post-shutdown the port no longer serves: either the connect fails or
    // anything sent on the old connection errors/disconnects.
    let outcome = client.compress_image(&image);
    assert!(outcome.is_err(), "server answered after shutdown");
    // Shutdown is idempotent (and runs again harmlessly on drop).
    server.shutdown();
}

#[test]
fn volume_ops_roundtrip_across_worker_counts_with_identical_bytes() {
    // compress-volume / decompress-volume over loopback: the stream bytes
    // must not depend on the worker count (brick fan-out included), and the
    // decoded voxels must match the input exactly.
    let stack = synth::ct_volume(48, 40, 12, 12, 31);
    let mut reference: Option<Vec<u8>> = None;
    for workers in [1usize, 2, 4] {
        let server = test_server(workers, 8);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let stream = client.compress_volume(&stack).expect("compress-volume");
        match &reference {
            None => reference = Some(stream.clone()),
            Some(bytes) => {
                assert_eq!(&stream, bytes, "LWCV bytes changed with {workers} workers")
            }
        }
        let back = client.decompress_volume(&stream).expect("decompress-volume");
        assert_eq!(back.samples(), stack.samples(), "lossy at {workers} workers");
        assert_eq!((back.width(), back.height(), back.depth()), (48, 40, 12));
    }
}

#[test]
fn region_ops_serve_crops_of_both_2d_and_volume_streams() {
    let server = test_server(2, 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // 2-D region: a rectangle straddling tile boundaries of an LWCT stream
    // (test_server uses 32-pixel tiles) comes back equal to the source crop.
    let image = synth::ct_phantom(80, 60, 12, 3);
    let stream = client.compress_image(&image).expect("compress");
    let region = client.decompress_region_image(&stream, 17, 9, 50, 40).expect("region");
    for y in 0..40 {
        for x in 0..50 {
            assert_eq!(region.get(x, y), image.get(17 + x, 9 + y), "pixel ({x}, {y})");
        }
    }

    // Volumetric region: a cuboid straddling brick boundaries of an LWCV
    // stream equals the source crop voxel for voxel.
    let stack = synth::ct_volume(48, 40, 12, 12, 8);
    let vstream = client.compress_volume(&stack).expect("compress-volume");
    let rect = BrickRect { plane: TileRect { x: 11, y: 7, width: 30, height: 25 }, z: 5, depth: 6 };
    let crop = client.decompress_region_volume(&vstream, rect).expect("volume region");
    for z in 0..rect.depth {
        let want = stack.slice(rect.z + z).expect("source slice");
        let got = crop.slice(z).expect("crop slice");
        for y in 0..rect.plane.height {
            for x in 0..rect.plane.width {
                assert_eq!(
                    got.get(x, y),
                    want.get(rect.plane.x + x, rect.plane.y + y),
                    "voxel ({x}, {y}, {z})"
                );
            }
        }
    }

    // Typed errors: an out-of-bounds cuboid, a multi-slice region of a 2-D
    // stream, and a volume stream sent to the 2-D decompress op.
    let bad_rect =
        BrickRect { plane: TileRect { x: 40, y: 0, width: 20, height: 10 }, z: 0, depth: 1 };
    let err = client.decompress_region_volume(&vstream, bad_rect).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    let deep = BrickRect { plane: TileRect { x: 0, y: 0, width: 8, height: 8 }, z: 0, depth: 2 };
    let err = client.decompress_region_volume(&stream, deep).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    let err = client.decompress(&vstream).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
}

#[test]
fn near_lossless_ops_respect_the_bound_and_reject_forged_quantizers() {
    let image = synth::ct_phantom(80, 60, 12, 21);

    // A δ=0 service is byte-identical to the default lossless one.
    let lossless = test_server(2, 8);
    let mut lossless_client = Client::connect(lossless.local_addr()).expect("connect");
    let lossless_stream = lossless_client.compress_image(&image).expect("compress");
    let zero_config = ServerConfig {
        workers: 2,
        queue_depth: 8,
        scales: 3,
        tile_size: 32,
        delta: 0,
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let zero = Server::bind("127.0.0.1:0", zero_config).expect("bind loopback");
    let mut zero_client = Client::connect(zero.local_addr()).expect("connect");
    assert_eq!(zero_client.compress_image(&image).expect("compress"), lossless_stream);

    // A δ=2 service produces the near-lossless engine's exact bytes, and any
    // server — near-lossless knob or not — decodes them within the bound,
    // because the quantizer rides in the stream headers.
    let config = ServerConfig {
        workers: 2,
        queue_depth: 8,
        scales: 3,
        tile_size: 32,
        // z_scales = 0 keeps the implied per-plane delta equal to the
        // container delta, so the plane/container mismatch forgery below is
        // actually a mismatch.
        z_scales: 0,
        delta: 2,
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let stream = client.compress_image(&image).expect("compress");
    assert_ne!(stream, lossless_stream, "δ=2 must quantize");
    let engine =
        TiledCompressor::with_codec(LosslessCodec::near_lossless(3, 2).unwrap(), 32, 32, 1)
            .unwrap();
    assert_eq!(stream, engine.compress(&image).unwrap());
    let back = lossless_client.decompress(&stream).expect("decompress on lossless server");
    assert!(stats::max_abs_diff(&image, &back).unwrap() <= 2);

    // Volumetric op under the same bound.
    let stack = synth::ct_volume(40, 32, 12, 10, 5);
    let vstream = client.compress_volume(&stack).expect("compress-volume");
    let vback = client.decompress_volume(&vstream).expect("decompress-volume");
    for (&a, &b) in stack.samples().iter().zip(vback.samples()) {
        assert!((a - b).abs() <= 2, "voxel error {} exceeds δ=2", (a - b).abs());
    }

    // Forged quantizer headers are typed refusals, not panics or wrong
    // pixels. LWCT v2 keeps its delta at byte 23: zeroing it forges a
    // near-lossless version claiming no quantizer...
    let mut forged = stream.clone();
    forged[23] = 0;
    let err = lossless_client.decompress(&forged).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    // ...and a different nonzero value contradicts the per-tile headers.
    let mut mismatched = stream.clone();
    mismatched[23] = 3;
    let err = lossless_client.decompress(&mismatched).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    // LWCV v2 keeps its delta at byte 32: same two forgeries.
    let mut forged = vstream.clone();
    forged[32] = 0;
    let err = client.decompress_volume(&forged).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
    let mut mismatched = vstream.clone();
    mismatched[32] = 7;
    let err = client.decompress_volume(&mismatched).unwrap_err();
    assert!(matches!(err, ServerError::Remote { code: ErrorCode::BadPayload, .. }), "{err}");
}
