//! Integration tests for the end-to-end lossless compression pipeline
//! (reversible transform + Rice-coded subbands) on the medical-like
//! workloads.

use lwc_core::prelude::*;

#[test]
fn every_workload_decodes_bit_exactly() {
    let codec = LosslessCodec::new(4).unwrap();
    for (name, image) in [
        ("ct", synth::ct_phantom(128, 128, 12, 1)),
        ("mr", synth::mr_slice(128, 128, 12, 2)),
        ("noise", synth::random_image(128, 128, 12, 3)),
        ("gradient", synth::gradient(128, 128, 12)),
        ("flat", synth::flat(128, 128, 12, 100)),
        ("checkerboard", synth::checkerboard(128, 128, 12, 2)),
    ] {
        let (bytes, report) = codec.compress_with_report(&image).unwrap();
        let decoded = codec.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &decoded).unwrap(), "{name}");
        assert!(report.compressed_bytes > 0, "{name}");
    }
}

#[test]
fn structured_content_compresses_noise_does_not() {
    let codec = LosslessCodec::new(5).unwrap();
    let (_b, ct) = codec.compress_with_report(&synth::ct_phantom(256, 256, 12, 7)).unwrap();
    let (_b, noise) = codec.compress_with_report(&synth::random_image(256, 256, 12, 7)).unwrap();
    assert!(ct.ratio() > 1.5, "CT phantom: {ct}");
    assert!(noise.ratio() < 1.05, "uniform noise: {noise}");
    assert!(ct.bits_per_pixel < noise.bits_per_pixel);
}

#[test]
fn flat_images_collapse_to_almost_nothing() {
    let codec = LosslessCodec::new(5).unwrap();
    let (_b, report) = codec.compress_with_report(&synth::flat(256, 256, 12, 1234)).unwrap();
    assert!(
        report.bits_per_pixel < 1.3,
        "a constant image should cost about a bit per pixel, got {report}"
    );
}

#[test]
fn compression_improves_with_resolution_on_smooth_content() {
    let codec = LosslessCodec::new(5).unwrap();
    let (_b, small) = codec.compress_with_report(&synth::ct_phantom(128, 128, 12, 9)).unwrap();
    let (_b, large) = codec.compress_with_report(&synth::ct_phantom(256, 256, 12, 9)).unwrap();
    assert!(large.bits_per_pixel < small.bits_per_pixel);
}

#[test]
fn different_bit_depths_roundtrip_through_the_codec() {
    for depth in [8u32, 10, 12, 16] {
        let image = synth::mr_slice(64, 64, depth, depth as u64);
        let codec = LosslessCodec::new(3).unwrap();
        let bytes = codec.compress(&image).unwrap();
        let decoded = codec.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &decoded).unwrap(), "{depth}-bit");
        assert_eq!(decoded.bit_depth(), depth);
    }
}

#[test]
fn corrupted_streams_are_rejected_not_miscoded() {
    let codec = LosslessCodec::new(3).unwrap();
    let image = synth::ct_phantom(64, 64, 12, 4);
    let bytes = codec.compress(&image).unwrap();
    // Flipping the magic or truncating the stream must produce an error.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0x55;
    assert!(codec.decompress(&bad_magic).is_err());
    let truncated = &bytes[..bytes.len() / 2];
    assert!(codec.decompress(truncated).is_err());
}

#[test]
fn pgm_roundtrip_composes_with_the_codec() {
    let dir = std::env::temp_dir().join("lwc_codec_end_to_end");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("study.pgm");
    let image = synth::ct_phantom(64, 64, 12, 6);
    pgm::save(&image, &path).unwrap();
    let loaded = pgm::load(&path).unwrap();
    let codec = LosslessCodec::new(3).unwrap();
    let decoded = codec.decompress(&codec.compress(&loaded).unwrap()).unwrap();
    assert!(stats::bit_exact(&image, &decoded).unwrap());
    std::fs::remove_file(&path).ok();
}
