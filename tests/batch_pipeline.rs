//! Property tests for the batch compression engine and the codec:
//!
//! * the lossless codec roundtrips bit-exactly on randomized synthetic
//!   phantoms across all six Table I filter banks and 1–5 decomposition
//!   levels (the fixed-point DWT side of the claim), and across 1–5 coding
//!   scales (the Rice-codec side),
//! * the multithreaded [`BatchCompressor`] produces streams byte-identical
//!   to the single-threaded codec, in input order, through both the batch
//!   and the streaming APIs,
//! * the per-subband [`ParallelCodec`] produces byte-identical streams and
//!   decodes them — with and without a [`SubbandDirectory`] — across 1–5
//!   coding scales and worker counts,
//! * the row-parallel fixed-point DWT matches the sequential transform bit
//!   for bit (which, with the bank sweep above, pins the wrap-free interior
//!   fast path of the rewritten inner loops to the Table I reference
//!   behaviour across all six banks and 1–5 levels).

use lwc_core::prelude::*;

/// Deterministic mix of modalities; the seeds make every run reproducible.
fn phantom(kind: usize, width: usize, height: usize, seed: u64) -> Image {
    match kind % 4 {
        0 => synth::ct_phantom(width, height, 12, seed),
        1 => synth::mr_slice(width, height, 12, seed),
        2 => synth::random_image(width, height, 12, seed),
        _ => synth::gradient(width, height, 12),
    }
}

#[test]
fn fixed_dwt_roundtrips_across_all_banks_and_levels() {
    for seed in 0..3u64 {
        let image = phantom(seed as usize, 64, 64, seed);
        for id in FilterId::ALL {
            for levels in 1..=5u32 {
                let report = lwc_core::verify_lossless(&image, id, levels)
                    .unwrap_or_else(|e| panic!("{id} at {levels} levels failed: {e}"));
                assert!(report.bit_exact, "{id} at {levels} levels, seed {seed}");
            }
        }
    }
}

#[test]
fn codec_roundtrips_across_one_to_five_scales() {
    for seed in 0..3u64 {
        for scales in 1..=5u32 {
            let codec = LosslessCodec::new(scales).unwrap();
            for kind in 0..4 {
                let image = phantom(kind, 64, 64, seed * 10 + kind as u64);
                let bytes = codec.compress(&image).unwrap();
                let back = codec.decompress(&bytes).unwrap();
                assert!(
                    stats::bit_exact(&image, &back).unwrap(),
                    "kind {kind}, {scales} scales, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn rectangular_images_roundtrip_through_the_batch_engine() {
    let engine = BatchCompressor::new(3, 2).unwrap();
    let images = vec![phantom(0, 128, 64, 5), phantom(1, 64, 128, 6), phantom(2, 96, 32, 7)];
    let (streams, _) = engine.compress_batch(&images).unwrap();
    let (decoded, _) = engine.decompress_batch(&streams).unwrap();
    for (image, back) in images.iter().zip(&decoded) {
        assert!(stats::bit_exact(image, back).unwrap());
    }
}

#[test]
fn batch_compressor_is_byte_identical_to_the_sequential_codec() {
    let codec = LosslessCodec::new(4).unwrap();
    let images: Vec<Image> = (0..10).map(|k| phantom(k, 64, 64, 100 + k as u64)).collect();
    let sequential: Vec<Vec<u8>> = images.iter().map(|i| codec.compress(i).unwrap()).collect();

    for workers in [1, 2, 4] {
        let engine = BatchCompressor::with_codec(codec, workers);
        let (batched, report) = engine.compress_batch(&images).unwrap();
        assert_eq!(batched, sequential, "{workers} workers");
        assert_eq!(report.images, images.len());

        let streamed: Vec<Vec<u8>> =
            engine.compress_iter(images.clone()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, sequential, "{workers} workers, streaming");
    }
}

#[test]
fn per_subband_parallel_codec_is_byte_identical_across_scales_and_workers() {
    for scales in 1..=5u32 {
        let sequential = LosslessCodec::new(scales).unwrap();
        for workers in [1, 2, 4] {
            let parallel = ParallelCodec::with_codec(sequential, workers);
            for kind in 0..4 {
                let image = phantom(kind, 64, 64, 500 + scales as u64 * 10 + kind as u64);
                let expected = sequential.compress(&image).unwrap();
                let (actual, directory) = parallel.compress_with_directory(&image).unwrap();
                assert_eq!(actual, expected, "kind {kind}, {scales} scales, {workers} workers");

                // Both decode paths reproduce the image exactly.
                let via_scan = parallel.decompress(&expected).unwrap();
                let via_directory =
                    parallel.decompress_with_directory(&expected, &directory).unwrap();
                assert!(stats::bit_exact(&image, &via_scan).unwrap());
                assert!(stats::bit_exact(&image, &via_directory).unwrap());
                // And the scanned directory matches the encoder's.
                assert_eq!(SubbandDirectory::scan(&sequential, &expected).unwrap(), directory);
            }
        }
    }
}

#[test]
fn single_image_batch_path_uses_the_parallel_codec() {
    let engine = BatchCompressor::new(4, 2).unwrap();
    let image = phantom(1, 128, 64, 900);
    let stream = engine.compress_one(&image).unwrap();
    assert_eq!(stream, engine.codec().compress(&image).unwrap());
    let back = engine.decompress_one(&stream).unwrap();
    assert!(stats::bit_exact(&image, &back).unwrap());
}

#[test]
fn row_parallel_dwt_matches_the_sequential_transform_bit_for_bit() {
    for id in FilterId::ALL {
        let bank = FilterBank::table1(id);
        let sequential = FixedDwt2d::paper_default(&bank, 3).unwrap();
        let parallel = ParallelFixedDwt2d::with_transform(sequential.clone(), 4);
        for seed in 0..2u64 {
            let image = phantom(seed as usize, 64, 64, 200 + seed);
            let expected = sequential.forward(&image).unwrap();
            let actual = parallel.forward(&image).unwrap();
            assert_eq!(actual.data(), expected.data(), "{id}, seed {seed}");
            let back = parallel.inverse(&actual).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap(), "{id}, seed {seed}");
        }
    }
}

/// The headline scaling claim: a four-worker batch compresses faster than
/// one worker, with streams byte-identical.
///
/// Byte-identity is always enforced; the measured speedup is printed on
/// every run. The wall-clock *assertion* (≥ 2× for the paper-sized
/// 16×(512×512) batch on a ≥ 4-core machine) only arms when
/// `LWC_STRICT_PERF=1` is set — timing assertions on shared, possibly
/// throttled CI runners fail spuriously, and the default `cargo test` run
/// is unoptimized debug code where the big workload would cost minutes.
#[test]
fn four_worker_batch_outpaces_the_sequential_codec() {
    let strict = std::env::var_os("LWC_STRICT_PERF").is_some_and(|v| v == "1");
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let (count, size) = if strict { (16, 512) } else { (8, 256) };
    let images: Vec<Image> = (0..count).map(|k| phantom(k, size, size, 300 + k as u64)).collect();

    let sequential = BatchCompressor::new(5, 1).unwrap();
    let parallel = BatchCompressor::with_codec(*sequential.codec(), 4);

    // Warm-up pass so page faults and lazy allocations hit neither timing.
    let _ = parallel.compress_batch(&images[..2]).unwrap();

    let (expected, seq_report) = sequential.compress_batch(&images).unwrap();
    let (actual, par_report) = parallel.compress_batch(&images).unwrap();
    assert_eq!(actual, expected, "parallel streams must be byte-identical");

    let speedup = par_report.speedup_over(&seq_report);
    eprintln!(
        "sequential: {seq_report}\nparallel:   {par_report}\nspeedup: {speedup:.2}x on {cores} cores"
    );
    if strict {
        let required = if cores >= 4 { 2.0 } else { 1.1 };
        assert!(
            speedup >= required,
            "expected >= {required}x speedup on {cores} cores, measured {speedup:.2}x"
        );
    }
}
