//! Property-based tests (proptest) on the core invariants of the workspace:
//! perfect reconstruction, rounding behaviour, entropy-coding round trips and
//! the monotonicity of the analytic models.

use lwc_core::lwc_coder::bitio::{BitReader, BitWriter};
use lwc_core::lwc_coder::rice;
use lwc_core::lwc_fixed::round_half_up_shift;
use lwc_core::lwc_lifting::{forward_53, inverse_53};
use lwc_core::lwc_perf::macs;
use lwc_core::lwc_wordlen::integer_bits;
use lwc_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fixed-point hardware round trip is lossless for any image content
    /// at the paper's word lengths (the central claim).
    #[test]
    fn fixed_dwt_roundtrip_is_lossless(
        seed in 0u64..10_000,
        filter_index in 0usize..6,
        scales in 1u32..=4,
        bit_depth in 8u32..=12,
    ) {
        let id = FilterId::ALL[filter_index];
        let image = synth::random_image(32, 32, bit_depth, seed);
        let report = lwc_core::verify_lossless(&image, id, scales).unwrap();
        prop_assert!(report.bit_exact);
    }

    /// The reversible lifting transform is exact for arbitrary signals.
    #[test]
    fn lifting_1d_roundtrip_is_exact(values in prop::collection::vec(-40960i32..40960, 1..64)) {
        let mut signal = values;
        if signal.len() % 2 == 1 {
            signal.push(0);
        }
        let (a, d) = forward_53(&signal);
        prop_assert_eq!(inverse_53(&a, &d), signal);
    }

    /// Round-half-up shifting agrees with the floating-point definition.
    #[test]
    fn round_half_up_matches_reference(value in -1_000_000i64..1_000_000, shift in 0u32..20) {
        let expected = ((value as f64) / (shift as f64).exp2() + 0.5).floor() as i64;
        prop_assert_eq!(round_half_up_shift(value, shift), expected);
    }

    /// Rice coding round-trips arbitrary signed values for any parameter.
    #[test]
    fn rice_roundtrip(values in prop::collection::vec(-100_000i32..100_000, 1..200), k in 0u32..20) {
        let mut writer = BitWriter::new();
        for &v in &values {
            rice::encode_value(&mut writer, v, k);
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(rice::decode_value(&mut reader, k).unwrap(), v);
        }
    }

    /// The zig-zag map is a bijection.
    #[test]
    fn zigzag_bijection(v in any::<i32>()) {
        prop_assert_eq!(rice::zigzag_decode(rice::zigzag_encode(v)), v);
    }

    /// Quantizing a representable value and back never moves it by more than
    /// half an LSB.
    #[test]
    fn qformat_quantization_error_is_bounded(
        value in -1000.0f64..1000.0,
        int_bits in 12u32..28,
    ) {
        let format = QFormat::new(32, int_bits).unwrap();
        let raw = format.quantize(value).unwrap();
        prop_assert!((format.dequantize(raw) - value).abs() <= format.lsb() / 2.0 + 1e-15);
    }

    /// Table II integer parts never decrease with scale or with wider inputs.
    #[test]
    fn integer_bits_are_monotonic(filter_index in 0usize..6, input_bits in 8u32..16) {
        let bank = FilterBank::table1(FilterId::ALL[filter_index]);
        let row = integer_bits::table2_row(&bank, input_bits, 6);
        for pair in row.windows(2) {
            prop_assert!(pair[1] >= pair[0]);
        }
        let wider = integer_bits::table2_row(&bank, input_bits + 1, 6);
        for (a, b) in row.iter().zip(&wider) {
            prop_assert!(b >= a);
        }
    }

    /// The MAC-count formula is additive across scales and shrinks by 4x per
    /// scale.
    #[test]
    fn mac_counts_shrink_geometrically(exp in 6u32..10, scales in 2u32..5) {
        let n = 1usize << exp;
        let total = macs::total_macs(n, 13, 13, scales);
        let first = macs::macs_for_scale(n, 13, 13, 1);
        prop_assert!(total >= first);
        prop_assert!((total as f64) < first as f64 * 4.0 / 3.0 + 1.0);
        prop_assert_eq!(macs::macs_for_scale(n, 13, 13, 2) * 4, first);
    }

    /// The subband codec reproduces arbitrary subband data.
    #[test]
    fn subband_codec_roundtrip(values in prop::collection::vec(-5000i32..5000, 1..300)) {
        let codec = lwc_core::lwc_coder::SubbandCodec::new();
        let mut writer = BitWriter::new();
        codec.encode_subband(&mut writer, &values);
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        prop_assert_eq!(codec.decode_subband(&mut reader, values.len()).unwrap(), values);
    }

    /// The end-to-end codec is lossless for arbitrary small images.
    #[test]
    fn codec_roundtrip_arbitrary_images(seed in 0u64..10_000, scales in 1u32..=3) {
        let image = synth::random_image(32, 32, 12, seed);
        let codec = LosslessCodec::new(scales).unwrap();
        let decoded = codec.decompress(&codec.compress(&image).unwrap()).unwrap();
        prop_assert!(stats::bit_exact(&image, &decoded).unwrap());
    }
}
