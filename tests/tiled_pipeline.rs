//! Property and integration tests for the tile-sharded compression core:
//!
//! * tiled round trips are lossless over randomized image sizes (including
//!   prime/odd dimensions smaller than a tile), tile sizes, decomposition
//!   depths and worker counts,
//! * a single-tile grid produces a stream **byte-identical** to the legacy
//!   [`LosslessCodec`], and multi-tile streams never depend on the worker
//!   count,
//! * the row-band streaming decoder reassembles the image exactly and in
//!   order,
//! * corrupt containers — truncated, padded, directory-tampered, or paired
//!   with the wrong codec configuration — are rejected, never miscoded.

use lwc_core::prelude::*;
use proptest::prelude::*;

/// Deterministic mix of modalities; the seeds make every run reproducible.
fn phantom(kind: usize, width: usize, height: usize, seed: u64) -> Image {
    match kind % 4 {
        0 => synth::ct_phantom(width, height, 12, seed),
        1 => synth::mr_slice(width, height, 12, seed),
        2 => synth::random_image(width, height, 12, seed),
        _ => synth::gradient(width, height, 12),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_roundtrip_is_lossless(
        width in 1usize..=150,
        height in 1usize..=150,
        tile in 8usize..=96,
        scales in 1u32..=5,
        workers in 1usize..=4,
        kind in 0usize..4,
    ) {
        let engine = TiledCompressor::with_codec(
            LosslessCodec::new(scales).expect("scales >= 1"),
            tile,
            tile,
            workers,
        )
        .expect("valid tile shape");
        let image = phantom(kind, width, height, (width * 1000 + height) as u64);
        let bytes = engine.compress(&image).expect("compress");
        let back = engine.decompress(&bytes).expect("decompress");
        prop_assert!(
            stats::bit_exact(&image, &back).expect("same shape"),
            "{width}x{height}, tile {tile}, {scales} scales, {workers} workers, kind {kind}"
        );
    }

    #[test]
    fn single_tile_grids_match_the_legacy_stream_byte_for_byte(
        width in 1usize..=120,
        height in 1usize..=120,
        scales in 1u32..=5,
        workers in 1usize..=4,
    ) {
        // Tile at least as large as the image: the engine must emit exactly
        // the legacy codec's bytes, and both decoders must accept them.
        let codec = LosslessCodec::new(scales).expect("scales >= 1");
        let engine = TiledCompressor::with_codec(codec, width.max(height), width.max(height), workers)
            .expect("valid tile shape");
        let image = phantom(2, width, height, (width + height) as u64);
        let tiled = engine.compress(&image).expect("tiled compress");
        let legacy = codec.compress(&image).expect("legacy compress");
        prop_assert_eq!(&tiled, &legacy);
        let back = engine.decompress(&legacy).expect("tiled engine reads legacy streams");
        prop_assert!(stats::bit_exact(&image, &back).expect("same shape"));
    }

    #[test]
    fn row_band_streaming_decode_reassembles_exactly(
        width in 1usize..=130,
        height in 1usize..=130,
        tile in 8usize..=64,
        workers in 1usize..=3,
    ) {
        let engine = TiledCompressor::with_codec(
            LosslessCodec::new(3).expect("scales"),
            tile,
            tile,
            workers,
        )
        .expect("valid tile shape");
        let image = phantom(0, width, height, (width * 7 + height) as u64);
        let bytes = engine.compress(&image).expect("compress");
        let mut rebuilt = Image::zeros(width, height, 12).expect("frame");
        let mut next_y = 0usize;
        for band in engine.decompress_row_bands(&bytes).expect("parse") {
            let band = band.expect("band decode");
            prop_assert_eq!(band.y, next_y);
            prop_assert_eq!(band.image.width(), width);
            let rect = TileRect { x: 0, y: band.y, width, height: band.image.height() };
            rebuilt
                .view_rect_mut(rect)
                .expect("band rect in bounds")
                .copy_from_image(&band.image)
                .expect("band shape");
            next_y += band.image.height();
        }
        prop_assert_eq!(next_y, height);
        prop_assert!(stats::bit_exact(&image, &rebuilt).expect("same shape"));
    }
}

#[test]
fn worker_count_never_changes_the_stream() {
    let image = phantom(1, 200, 170, 31);
    let mut streams = Vec::new();
    for workers in [1usize, 2, 5] {
        let engine =
            TiledCompressor::with_codec(LosslessCodec::new(4).unwrap(), 64, 48, workers).unwrap();
        streams.push(engine.compress(&image).unwrap());
    }
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[0], streams[2]);
}

#[test]
fn corrupt_tile_directories_are_rejected_not_miscoded() {
    let engine = TiledCompressor::with_codec(LosslessCodec::new(3).unwrap(), 32, 32, 2).unwrap();
    let image = phantom(0, 100, 70, 9);
    let bytes = engine.compress(&image).unwrap();
    let header_bytes = 23; // fixed LWCT header size
    let entry_bytes = 6; // 48-bit directory offsets

    // Truncation anywhere: header, directory, payloads.
    for len in [0, 4, header_bytes - 1, header_bytes + entry_bytes + 1, bytes.len() - 1] {
        assert!(engine.decompress(&bytes[..len]).is_err(), "prefix of {len} bytes");
    }
    // Trailing garbage disagrees with the directory's end offset.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0, 0, 0]);
    assert!(engine.decompress(&padded).is_err());
    // Shifting the first payload offset breaks the payload-start invariant.
    let mut shifted = bytes.clone();
    shifted[header_bytes + entry_bytes - 1] ^= 0x01;
    assert!(engine.decompress(&shifted).is_err());
    // Swapping two interior offsets breaks monotonicity.
    let mut swapped = bytes.clone();
    let (a, b) = (header_bytes + entry_bytes, header_bytes + 2 * entry_bytes);
    for i in 0..entry_bytes {
        swapped.swap(a + i, b + i);
    }
    assert!(engine.decompress(&swapped).is_err());
    // An unknown container version is refused outright.
    let mut versioned = bytes.clone();
    versioned[4] = 0x7F;
    assert!(engine.decompress(&versioned).is_err());
    // A mis-scaled codec is refused before any tile decodes.
    let other = TiledCompressor::with_codec(LosslessCodec::new(5).unwrap(), 32, 32, 2).unwrap();
    assert!(other.decompress(&bytes).is_err());
    // And the untouched stream still decodes (the corruptions above were
    // real corruptions, not an over-strict parser).
    assert!(stats::bit_exact(&image, &engine.decompress(&bytes).unwrap()).unwrap());
}

#[test]
fn batch_and_tiled_engines_compose() {
    // The batch engine hands out a tiled engine sharing codec and workers;
    // both must agree with the sequential codec on a single-tile image.
    let batch = BatchCompressor::new(3, 2).unwrap();
    let tiled = batch.tiled(DEFAULT_TILE_SIZE, DEFAULT_TILE_SIZE).unwrap();
    let image = phantom(0, 96, 96, 3);
    assert_eq!(tiled.compress(&image).unwrap(), batch.codec().compress(&image).unwrap());
}

/// Release-scale acceptance smoke (debug builds skip it; CI runs the same
/// thing through `reproduce tiled 4096`): a 4096x4096 synthetic image
/// compresses and decompresses losslessly through the tiled path.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-scale; covered by `reproduce tiled 4096` in CI")]
fn large_image_roundtrips_through_the_tiled_path() {
    let engine = TiledCompressor::new(5, DEFAULT_TILE_SIZE, 0).unwrap();
    let image = synth::ct_phantom(4096, 4096, 12, 42);
    let bytes = engine.compress(&image).unwrap();
    let back = engine.decompress(&bytes).unwrap();
    assert!(stats::bit_exact(&image, &back).unwrap());
}
