//! Integration tests for the architecture simulator: the paper's validation
//! criterion is that the VHDL model, fed with random images, "gave the same
//! output as a software implementation". The Rust simulator must satisfy the
//! same criterion against the bit-exact software datapath, and its cycle
//! accounting must reproduce the utilization/throughput figures.

use lwc_core::lwc_perf::macs;
use lwc_core::prelude::*;

fn run_and_compare(size: usize, filter: FilterId, scales: u32, seed: u64) -> ArchReport {
    let params = ArchParams::new(size, filter, scales).unwrap();
    let simulator = ArchSimulator::new(params).unwrap();
    let image = synth::random_image(size, size, 12, seed);
    let run = simulator.run(&image).unwrap();

    let software = FixedDwt2d::paper_default(&FilterBank::table1(filter), scales).unwrap();
    let reference = software.forward(&image).unwrap();
    assert_eq!(
        run.decomposition.data(),
        reference.data(),
        "simulator output differs from the software implementation"
    );
    run.report
}

#[test]
fn simulator_matches_software_for_several_configurations() {
    for (size, filter, scales, seed) in [
        (64usize, FilterId::F2, 3u32, 1u64),
        (64, FilterId::F1, 2, 2),
        (128, FilterId::F4, 4, 3),
        (64, FilterId::F5, 3, 4),
    ] {
        let report = run_and_compare(size, filter, scales, seed);
        // The utilization depends on the macrocycle length (shorter filters
        // lose relatively more to the fixed 6-cycle refresh): compare against
        // the analytic value rather than the 13-tap figure.
        let taps = FilterBank::table1(filter).max_len() as u64;
        let expected = lwc_core::lwc_arch::schedule::utilization(taps, 48, 1, 6);
        assert!(
            (report.utilization() - expected).abs() < 0.003,
            "{filter}: {} vs expected {expected}",
            report.utilization()
        );
    }
}

#[test]
fn cycle_count_tracks_the_analytic_mac_count() {
    let report = run_and_compare(128, FilterId::F2, 5, 9);
    let expected_busy = macs::total_macs(128, 13, 13, 5);
    assert_eq!(report.busy_cycles, expected_busy);
    // Stalls are the only other cycles, and they are a small fraction.
    assert!(report.stall_cycles * 50 < report.busy_cycles);
}

#[test]
fn utilization_matches_the_papers_figure_at_the_default_refresh_interval() {
    let report = run_and_compare(128, FilterId::F2, 5, 10);
    assert!(
        (report.utilization() - 0.9904).abs() < 0.002,
        "utilization {:.4}",
        report.utilization()
    );
}

#[test]
fn throughput_and_speedup_have_the_papers_shape() {
    // Cycle cost per pixel is independent of the image size, so a 128x128 run
    // predicts the 512x512 headline numbers exactly up to the refresh
    // rounding.
    let report = run_and_compare(128, FilterId::F2, 5, 11);
    let cycles_per_pixel = report.total_cycles() as f64 / (128.0 * 128.0);
    let cycles_512 = cycles_per_pixel * 512.0 * 512.0;
    let hardware = HardwareModel::paper_default();
    let images_per_second = hardware.clock_hz / cycles_512;
    assert!(
        (images_per_second - 3.5).abs() < 0.4,
        "predicted {images_per_second:.2} images/s for the 512x512 workload"
    );

    let software = SoftwareModel::pentium_133();
    let speedup =
        software.seconds_for(macs::total_macs(512, 13, 13, 6)) / (cycles_512 / hardware.clock_hz);
    assert!(
        (speedup - 154.0).abs() / 154.0 < 0.15,
        "predicted speedup {speedup:.0}x vs paper 154x"
    );
}

#[test]
fn buffer_sizings_are_respected_during_whole_transforms() {
    let params = ArchParams::new(128, FilterId::F2, 5).unwrap();
    let simulator = ArchSimulator::new(params).unwrap();
    let run = simulator.run(&synth::ct_phantom(128, 128, 12, 5)).unwrap();
    assert!(run.report.peak_input_buffer_words <= simulator.input_buffer_spec().words);
    assert!(run.report.dram_reads > 0 && run.report.dram_writes > 0);
    // Every output leaves through the FIFO and reaches the DRAM exactly once.
    let expected_writes: u64 = (1..=5u32).map(|s| 2 * (128u64 >> (s - 1)).pow(2)).sum();
    assert_eq!(run.report.dram_writes, expected_writes);
}

#[test]
fn inverse_simulation_restores_the_image_and_matches_the_software_idwt() {
    let params = ArchParams::new(128, FilterId::F2, 5).unwrap();
    let simulator = ArchSimulator::new(params).unwrap();
    let image = synth::ct_phantom(128, 128, 12, 21);

    let forward = simulator.run(&image).unwrap();
    let inverse = simulator.run_inverse(&forward.decomposition).unwrap();
    assert_eq!(inverse.image.samples(), image.samples(), "hardware round trip must be lossless");

    let software = FixedDwt2d::paper_default(&FilterBank::table1(FilterId::F2), 5).unwrap();
    let reference = software.inverse(&forward.decomposition).unwrap();
    assert_eq!(inverse.image.samples(), reference.samples());

    // Section 2 of the paper: the IDWT costs the same number of operations.
    assert_eq!(inverse.report.busy_cycles, forward.report.busy_cycles);
}

#[test]
fn simulator_rejects_wrong_workloads_and_configurations() {
    let simulator = ArchSimulator::new(ArchParams::new(64, FilterId::F2, 3).unwrap()).unwrap();
    assert!(simulator.run(&synth::flat(32, 32, 12, 0)).is_err());
    assert!(ArchParams::new(100, FilterId::F2, 3).is_err());
}
