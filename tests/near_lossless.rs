//! Property tests of the near-lossless mode's headline guarantee: for any
//! content, any decomposition depth, any tile/brick shape and any configured
//! bound δ, the reconstruction satisfies `max|orig − recon| ≤ δ` — and δ = 0
//! is byte-identical to the lossless streams, on every engine that carries
//! the quantizer ([`LosslessCodec`], [`ParallelCodec`], [`TiledCompressor`],
//! [`VolumeCompressor`], [`BatchCompressor`]).

use lwc_core::lwc_coder::{plane_delta_for_volume, QuantSchedule};
use lwc_core::prelude::*;
use proptest::prelude::*;

const DELTAS: [u8; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential codec: the bound holds for arbitrary content, depth and δ.
    #[test]
    fn sequential_codec_respects_the_bound(
        seed in 0u64..10_000,
        scales in 1u32..=4,
        delta_index in 0usize..DELTAS.len(),
        width in 17usize..80,
        height in 16usize..64,
    ) {
        let delta = DELTAS[delta_index];
        let image = synth::random_image(width, height, 12, seed);
        let codec = LosslessCodec::near_lossless(scales, delta).unwrap();
        let back = codec.decompress(&codec.compress(&image).unwrap()).unwrap();
        prop_assert!(stats::max_abs_diff(&image, &back).unwrap() <= i32::from(delta));
    }

    /// Tile-parallel engine: the bound holds across tile shapes and worker
    /// counts, whole-image and per-tile.
    #[test]
    fn tiled_engine_respects_the_bound_per_tile(
        seed in 0u64..10_000,
        scales in 1u32..=3,
        delta_index in 0usize..DELTAS.len(),
        tile_w in 16usize..48,
        tile_h in 16usize..48,
        workers in 1usize..=3,
    ) {
        let delta = DELTAS[delta_index];
        let image = synth::ct_phantom(70, 55, 12, seed);
        let codec = LosslessCodec::near_lossless(scales, delta).unwrap();
        let engine = TiledCompressor::with_codec(codec, tile_w, tile_h, workers).unwrap();
        let stream = engine.compress(&image).unwrap();
        let back = engine.decompress(&stream).unwrap();
        prop_assert!(stats::max_abs_diff(&image, &back).unwrap() <= i32::from(delta));
        if lwc_core::lwc_coder::tiled::is_tiled(&stream) {
            let grid = engine.grid(70, 55).unwrap();
            for index in [0, grid.tile_count() - 1] {
                let tile = engine.decompress_tile(&stream, index).unwrap();
                let crop = image.crop(grid.rect(index)).unwrap();
                prop_assert!(stats::max_abs_diff(&crop, &tile).unwrap() <= i32::from(delta));
            }
        }
    }

    /// Subband-parallel engine: same bound, same bytes as the sequential
    /// codec.
    #[test]
    fn parallel_codec_matches_the_sequential_bytes_and_bound(
        seed in 0u64..10_000,
        scales in 1u32..=3,
        delta_index in 0usize..DELTAS.len(),
    ) {
        let delta = DELTAS[delta_index];
        let image = synth::mr_slice(48, 37, 12, seed);
        let codec = LosslessCodec::near_lossless(scales, delta).unwrap();
        let parallel = ParallelCodec::with_codec(codec, 2);
        let stream = parallel.compress(&image).unwrap();
        prop_assert_eq!(&stream, &codec.compress(&image).unwrap());
        let back = parallel.decompress(&stream).unwrap();
        prop_assert!(stats::max_abs_diff(&image, &back).unwrap() <= i32::from(delta));
    }

    /// Volumetric engine: the container bound holds per voxel across brick
    /// shapes and z depths — the z-axis synthesis gain is the engine's
    /// problem, not the caller's.
    #[test]
    fn volume_engine_respects_the_bound(
        seed in 0u64..10_000,
        z_scales in 0u32..=2,
        delta_index in 0usize..DELTAS.len(),
        tile in 16usize..40,
        brick_depth in 4usize..10,
    ) {
        let delta = DELTAS[delta_index];
        let stack = synth::ct_volume(36, 28, 12, 9, seed);
        let codec = LosslessCodec::near_lossless(2, delta).unwrap();
        let engine =
            VolumeCompressor::with_codec(codec, z_scales, tile, tile, brick_depth, 2).unwrap();
        let back = engine.decompress_stack(&engine.compress_stack(&stack).unwrap()).unwrap();
        for (&a, &b) in stack.samples().iter().zip(back.samples()) {
            prop_assert!((a - b).abs() <= i32::from(delta));
        }
    }

    /// The schedule's analytic bound is itself ≤ δ — the static guarantee
    /// the roundtrip tests witness dynamically.
    #[test]
    fn schedule_bounds_never_exceed_delta(delta in 0u8..=64, scales in 1u32..=6) {
        let schedule = QuantSchedule::for_delta(delta, scales);
        prop_assert!(schedule.bound() <= u64::from(delta));
        // The volumetric derivation is consistent: amplifying the plane
        // delta by the z gain stays within the volume bound.
        for z_scales in 0..=3u32 {
            let plane = plane_delta_for_volume(delta, z_scales);
            prop_assert!(plane <= delta);
        }
    }
}

#[test]
fn zero_delta_is_byte_identical_to_lossless_on_every_engine() {
    let image = synth::ct_phantom(96, 70, 12, 3);
    let stack = synth::ct_volume(48, 40, 12, 10, 3);
    let lossless = LosslessCodec::new(3).unwrap();
    let zero = LosslessCodec::near_lossless(3, 0).unwrap();
    assert_eq!(
        lossless.compress(&image).unwrap(),
        zero.compress(&image).unwrap(),
        "sequential codec"
    );
    assert_eq!(
        ParallelCodec::with_codec(lossless, 2).compress(&image).unwrap(),
        ParallelCodec::with_codec(zero, 2).compress(&image).unwrap(),
        "parallel codec"
    );
    assert_eq!(
        TiledCompressor::with_codec(lossless, 32, 32, 2).unwrap().compress(&image).unwrap(),
        TiledCompressor::with_codec(zero, 32, 32, 2).unwrap().compress(&image).unwrap(),
        "tiled engine"
    );
    assert_eq!(
        VolumeCompressor::with_codec(lossless, 1, 32, 32, 8, 2)
            .unwrap()
            .compress_stack(&stack)
            .unwrap(),
        VolumeCompressor::with_codec(zero, 1, 32, 32, 8, 2)
            .unwrap()
            .compress_stack(&stack)
            .unwrap(),
        "volume engine"
    );
    let images = vec![image; 3];
    let (lossless_streams, _) =
        BatchCompressor::with_codec(lossless, 2).compress_batch(&images).unwrap();
    let (zero_streams, _) = BatchCompressor::with_codec(zero, 2).compress_batch(&images).unwrap();
    assert_eq!(lossless_streams, zero_streams, "batch engine");
}

#[test]
fn batch_engine_threads_the_bound_through_its_workers() {
    let images: Vec<Image> = (0..5).map(|k| synth::mr_slice(60, 44, 12, k)).collect();
    for delta in DELTAS {
        let codec = LosslessCodec::near_lossless(3, delta).unwrap();
        let batch = BatchCompressor::with_codec(codec, 3);
        let (streams, _) = batch.compress_batch(&images).unwrap();
        let (decoded, _) = batch.decompress_batch(&streams).unwrap();
        for (original, back) in images.iter().zip(&decoded) {
            assert!(stats::max_abs_diff(original, back).unwrap() <= i32::from(delta), "δ={delta}");
        }
    }
}
