//! Golden-value and property tests for `lwc-metrics`: PSNR and SSIM against
//! hand-computed references, plus the structural invariants (symmetry,
//! range, identity) the indices must keep for arbitrary image pairs.

use lwc_core::prelude::*;
use proptest::prelude::*;

#[test]
fn psnr_goldens_match_hand_computed_values() {
    // 4x4 8-bit, one pixel off by 1: MSE = 1/16,
    // PSNR = 10 log10(255² · 16) = 48.13 + 12.04 ≈ 60.1729 dB.
    let a = synth::flat(4, 4, 8, 10);
    let mut samples = a.samples().to_vec();
    samples[0] = 11;
    let b = Image::from_samples(4, 4, 8, samples).unwrap();
    let golden = 10.0 * (255.0f64 * 255.0 * 16.0).log10();
    assert!((metrics::psnr(&a, &b).unwrap() - golden).abs() < 1e-9);
    assert!((golden - 60.172_003).abs() < 1e-4, "the golden itself: {golden}");

    // Every pixel off by exactly 2 on 12-bit data: MSE = 4,
    // PSNR = 20 log10(4095 / 2) ≈ 66.2243 dB.
    let a = synth::flat(8, 8, 12, 100);
    let b = synth::flat(8, 8, 12, 102);
    let golden = 20.0 * (4095.0f64 / 2.0).log10();
    assert!((metrics::psnr(&a, &b).unwrap() - golden).abs() < 1e-9);
    assert!((golden - 66.224_3).abs() < 1e-3, "the golden itself: {golden}");

    // Identical images: infinite PSNR, zero L∞, lossless report.
    let img = synth::ct_phantom(40, 30, 12, 5);
    assert_eq!(metrics::psnr(&img, &img).unwrap(), f64::INFINITY);
    let report = metrics::fidelity(&img, &img).unwrap();
    assert!(report.lossless());
    assert_eq!(report.max_abs_error, 0);
    assert!((report.ssim - 1.0).abs() < 1e-12);
}

#[test]
fn ssim_golden_for_a_uniform_shift() {
    // Two flat images: all windows have zero variance and covariance, so
    // SSIM reduces to the luminance term (2μaμb + C1)/(μa² + μb² + C1)
    // exactly — C2 cancels between numerator and denominator.
    let a = synth::flat(16, 16, 8, 100);
    let b = synth::flat(16, 16, 8, 120);
    let c1 = (0.01f64 * 255.0).powi(2);
    let golden = (2.0 * 100.0 * 120.0 + c1) / (100.0f64.powi(2) + 120.0f64.powi(2) + c1);
    assert!((metrics::ssim(&a, &b).unwrap() - golden).abs() < 1e-12);
}

#[test]
fn compression_report_golden_for_the_paper_configuration() {
    // A 512x512 12-bit image stored at 2 bytes/pixel: raw = 524 288 bytes.
    // A 262 144-byte stream is ratio 2.0 at 8.0 bits/pixel.
    let fid = FidelityReport { psnr_db: f64::INFINITY, ssim: 1.0, max_abs_error: 0 };
    let report = metrics::compression(512 * 512, 12, 262_144, fid);
    assert_eq!(report.raw_bytes, 524_288);
    assert!((report.ratio - 2.0).abs() < 1e-12);
    assert!((report.bits_per_pixel - 8.0).abs() < 1e-12);
}

#[test]
fn near_lossless_rate_distortion_is_monotonic_on_a_phantom() {
    // Larger δ must never compress worse, and the measured L∞ never exceeds
    // δ — metrics and quantizer agreeing end to end.
    let image = synth::ct_phantom(128, 96, 12, 17);
    let mut previous_bytes = u64::MAX;
    for delta in [0u8, 1, 2, 4, 8] {
        let codec = LosslessCodec::near_lossless(3, delta).unwrap();
        let stream = codec.compress(&image).unwrap();
        let back = codec.decompress(&stream).unwrap();
        let fid = metrics::fidelity(&image, &back).unwrap();
        assert!(fid.max_abs_error <= i32::from(delta), "δ={delta}");
        let report = metrics::compression(image.pixel_count() as u64, 12, stream.len() as u64, fid);
        // δ=1 cannot quantize anything (no allowance fits the 5/3 synthesis
        // gain) yet pays the one-byte quantizer header, so allow exactly
        // that much slack in the monotonicity check.
        assert!(
            report.compressed_bytes <= previous_bytes.saturating_add(1),
            "δ={delta} compressed worse than a smaller bound ({} vs {previous_bytes})",
            report.compressed_bytes
        );
        previous_bytes = report.compressed_bytes;
        if delta == 0 {
            assert!(report.fidelity.lossless());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SSIM is symmetric, bounded in [-1, 1], and exactly 1 on identity, for
    /// arbitrary content, bit depth and non-multiple-of-8 shapes.
    #[test]
    fn ssim_invariants(
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
        width in 8usize..40,
        height in 8usize..40,
        bit_depth in 8u32..=12,
    ) {
        let a = synth::random_image(width, height, bit_depth, seed_a);
        let b = synth::random_image(width, height, bit_depth, seed_b);
        let ab = metrics::ssim(&a, &b).unwrap();
        let ba = metrics::ssim(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry: {ab} vs {ba}");
        prop_assert!((-1.0..=1.0).contains(&ab), "range: {ab}");
        prop_assert!((metrics::ssim(&a, &a).unwrap() - 1.0).abs() < 1e-12, "identity");
    }

    /// PSNR is symmetric for same-depth pairs, infinite only on identity,
    /// and decreases when a distortion grows.
    #[test]
    fn psnr_invariants(
        seed in 0u64..10_000,
        width in 4usize..32,
        height in 4usize..32,
        shift in 1i32..8,
    ) {
        let a = synth::random_image(width, height, 12, seed);
        let perturb = |amount: i32| {
            let samples: Vec<i32> =
                a.samples().iter().map(|&v| (v + amount).min((1 << 12) - 1)).collect();
            Image::from_samples(width, height, 12, samples).unwrap()
        };
        let near = perturb(shift);
        let far = perturb(shift * 2);
        let psnr_near = metrics::psnr(&a, &near).unwrap();
        let psnr_far = metrics::psnr(&a, &far).unwrap();
        prop_assert!(psnr_near.is_finite());
        prop_assert!(psnr_near > psnr_far, "{psnr_near} vs {psnr_far}");
        prop_assert!((metrics::psnr(&a, &near).unwrap()
            - metrics::psnr(&near, &a).unwrap()).abs() < 1e-9, "symmetry");
        prop_assert_eq!(metrics::psnr(&a, &a).unwrap(), f64::INFINITY);
        // max-abs-error sees exactly the injected shift (clamped pixels can
        // only shrink it).
        prop_assert!(metrics::max_abs_error(&a, &near).unwrap() <= shift);
    }

    /// Volume fidelity equals per-slice fidelity when the stack is one slice
    /// deep, and its L∞ is the max over slices in general.
    #[test]
    fn volume_fidelity_agrees_with_slices(
        seed in 0u64..10_000,
        depth in 1usize..5,
    ) {
        let slices: Vec<Image> =
            (0..depth).map(|z| synth::ct_phantom(24, 20, 12, seed + z as u64)).collect();
        let reference = ImageStack::from_slices(&slices).unwrap();
        let distorted: Vec<Image> = slices
            .iter()
            .enumerate()
            .map(|(z, s)| {
                let samples: Vec<i32> = s
                    .samples()
                    .iter()
                    .map(|&v| (v + z as i32).min((1 << 12) - 1))
                    .collect();
                Image::from_samples(24, 20, 12, samples).unwrap()
            })
            .collect();
        let test = ImageStack::from_slices(&distorted).unwrap();
        let report = metrics::volume_fidelity(&reference, &test).unwrap();
        let per_slice_worst = slices
            .iter()
            .zip(&distorted)
            .map(|(a, b)| metrics::max_abs_error(a, b).unwrap())
            .max()
            .unwrap();
        prop_assert_eq!(report.max_abs_error, per_slice_worst);
        if depth == 1 {
            let flat = metrics::fidelity(&slices[0], &distorted[0]).unwrap();
            prop_assert_eq!(report, flat);
        }
    }
}
