//! Property-based and end-to-end tests of the paper-exact fixed-path codec:
//! `LWCF` round trips across Table I banks × decomposition depths × tile
//! shapes × worker counts, worker-count independence of the bytes, typed
//! rejection of truncated or tampered containers, and byte-identical
//! dispatch through `dyn Codec`.

use lwc_core::lwc_coder::{is_fixed, FixedStream, FIXED_HEADER_BYTES};
use lwc_core::prelude::*;
use proptest::prelude::*;

fn engine(filter_index: usize, scales: u32, tile: usize, workers: usize) -> TiledFixedCompressor {
    let bank = FilterBank::table1(FilterId::ALL[filter_index]);
    TiledFixedCompressor::new(&bank, scales, tile, workers).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `decompress(compress(x))` is pixel-exact for every Table I bank at
    /// every depth/tile/worker combination, and the bytes never depend on
    /// the worker count: any parallel schedule emits the 1-worker stream.
    #[test]
    fn lwcf_roundtrips_and_ignores_worker_count(
        seed in 0u64..10_000,
        filter_index in 0usize..6,
        scales in 1u32..=3,
        tile_multiplier in 1usize..=3,
        width_multiplier in 1usize..=4,
        height_multiplier in 1usize..=4,
        workers in 2usize..=5,
    ) {
        // Every occurring tile shape must halve `scales` times, so dimensions
        // and tiles are multiples of 2^scales.
        let unit = 1usize << scales;
        let tile = tile_multiplier * unit;
        let image =
            synth::random_image(width_multiplier * unit, height_multiplier * unit, 12, seed);
        let parallel = engine(filter_index, scales, tile, workers);
        let bytes = parallel.compress(&image).unwrap();
        prop_assert!(is_fixed(&bytes));
        let sequential = engine(filter_index, scales, tile, 1);
        prop_assert_eq!(&bytes, &sequential.compress(&image).unwrap());
        prop_assert!(stats::bit_exact(&image, &parallel.decompress(&bytes).unwrap()).unwrap());
    }

    /// Truncated containers and tampered directory entries surface as typed
    /// errors, never panics, hangs or out-of-bounds slices.
    #[test]
    fn corrupt_lwcf_containers_are_rejected(seed in 0u64..10_000, cut in 1usize..64) {
        let image = synth::random_image(64, 64, 12, seed);
        let codec = engine(0, 3, 32, 1);
        let bytes = codec.compress(&image).unwrap();
        prop_assert!(is_fixed(&bytes));
        // The directory's final entry must equal the container length, so
        // dropping any suffix is a parse error before a slice is taken.
        let truncated = &bytes[..bytes.len() - cut.min(bytes.len() - 4)];
        prop_assert!(codec.decompress(truncated).is_err());
        // Forging a directory offset trips the monotonic/bounds validation.
        let mut forged = bytes.clone();
        forged[FIXED_HEADER_BYTES + (cut % 6)] ^= 0x80;
        prop_assert!(FixedStream::parse(&forged).is_err());
        prop_assert!(codec.decompress(&forged).is_err());
    }

    /// Dispatch through `dyn Codec` — the interface the server, batch engine
    /// and reproduction binary use — is byte-identical to concrete calls.
    #[test]
    fn dyn_codec_dispatch_is_byte_identical(seed in 0u64..10_000, filter_index in 0usize..6) {
        let image = synth::random_image(48, 48, 12, seed);
        let concrete = engine(filter_index, 2, 16, 2);
        let trait_object: &dyn Codec = &concrete;
        let via_trait = trait_object.compress(&image).unwrap();
        prop_assert_eq!(&via_trait, &concrete.compress(&image).unwrap());
        prop_assert!(
            stats::bit_exact(&image, &trait_object.decompress(&via_trait).unwrap()).unwrap()
        );
        // Tile access through the trait hits the directory-driven override.
        let grid = concrete.grid(48, 48).unwrap();
        let last = grid.tile_count() - 1;
        let tile = trait_object.decompress_tile(&via_trait, last).unwrap();
        prop_assert!(stats::bit_exact(&image.crop(grid.rect(last)).unwrap(), &tile).unwrap());
    }
}

/// Full-scale smoke: the CI frame size through compress, decompress and
/// random tile access, all via `dyn Codec`. Debug builds skip it (the fixed
/// datapath is far too slow unoptimized); CI covers the release run through
/// `reproduce fixed-codec 4096` as well.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: 4096x4096 frame")]
fn full_scale_lwcf_roundtrip() {
    let bank = FilterBank::table1(FilterId::F1);
    let engine = TiledFixedCompressor::new(&bank, 5, DEFAULT_TILE_SIZE, 0).unwrap();
    let frame = synth::ct_phantom(4096, 4096, 12, 42);
    let trait_object: &dyn Codec = &engine;
    let bytes = trait_object.compress(&frame).unwrap();
    assert!(is_fixed(&bytes));
    let grid = engine.grid(4096, 4096).unwrap();
    let last = grid.tile_count() - 1;
    let tile = trait_object.decompress_tile(&bytes, last).unwrap();
    assert!(stats::bit_exact(&frame.crop(grid.rect(last)).unwrap(), &tile).unwrap());
    assert!(stats::bit_exact(&frame, &trait_object.decompress(&bytes).unwrap()).unwrap());
}
