//! Property tests for the line-based fused DWT engines:
//!
//! * the lifting-path [`LineDwt53`] is bit-identical to the multi-pass
//!   [`Lifting53`] on arbitrary geometries (odd, prime, degenerate) at any
//!   decomposition depth,
//! * the fixed-point [`LineFixedDwt`] is bit-identical to the paper-exact
//!   multi-pass [`FixedDwt2d`] across every Table I bank and decomposable
//!   geometry,
//! * the row-streaming [`LineCompressor`] produces byte-for-byte the
//!   sequential codec's container and round-trips losslessly,
//! * (release builds only) a full 4096x4096 streaming encode keeps its
//!   coefficient working set at `O(width x levels)` — the software analogue
//!   of the paper's bounded line-buffer memory.

use lwc_core::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lifting datapath: the one-pass cascade reproduces the multi-pass
    /// pyramid word for word, including ragged odd/prime dimensions where
    /// the ceil-halving pyramid saturates.
    #[test]
    fn lifting_fused_matches_multi_pass(
        width in 1usize..=97,
        height in 1usize..=97,
        scales in 1u32..=5,
        seed in 0u64..10_000,
    ) {
        let image = synth::random_image(width, height, 12, seed);
        let fused = LineDwt53::forward_view(&image.view(), scales).unwrap();
        let multi = Lifting53::new(scales).unwrap().forward(&image).unwrap();
        prop_assert!(fused == multi, "fused != multi-pass for {width}x{height} at {scales} scales");
    }

    /// Fixed-point datapath: fused == multi-pass for every quantized Table I
    /// bank on decomposable geometries (dimensions divisible by
    /// `2^scales`), pinning the deferred periodic boundary rows and the
    /// fused vertical accumulation to the reference.
    #[test]
    fn fixed_fused_matches_multi_pass(
        filter_index in 0usize..6,
        scales in 1u32..=5,
        w_factor in 1usize..=5,
        h_factor in 1usize..=5,
        seed in 0u64..10_000,
    ) {
        let id = FilterId::ALL[filter_index];
        let bank = FilterBank::table1(id);
        let hw = FixedDwt2d::paper_default(&bank, scales).unwrap();
        let (w, h) = (w_factor << scales, h_factor << scales);
        let image = synth::random_image(w, h, 12, seed);
        let fused = LineFixedDwt::forward_view(&hw, &image.view()).unwrap();
        prop_assert!(fused == hw.forward(&image).unwrap(), "fused != multi-pass for {id}: {w}x{h} at {scales} scales");
    }

    /// The row-streaming encoder emits the sequential codec's exact bytes
    /// (subband splicing is invisible in the container) and round-trips.
    #[test]
    fn streaming_encoder_matches_sequential_codec(
        width in 1usize..=80,
        height in 1usize..=80,
        scales in 1u32..=5,
        seed in 0u64..10_000,
    ) {
        let image = synth::random_image(width, height, 12, seed);
        let line = LineCompressor::new(scales).unwrap();
        let stream = line.compress(&image).unwrap();
        let reference = LosslessCodec::new(scales).unwrap().compress(&image).unwrap();
        prop_assert_eq!(&stream, &reference);
        let back = line.decompress(&stream).unwrap();
        prop_assert!(stats::bit_exact(&image, &back).unwrap());
    }
}

/// Release-gated smoke at real frame scale: a full 4096x4096 push-style
/// encode must hold the `O(width x levels)` working-set bound while still
/// producing the sequential codec's exact container. Debug builds skip it
/// (the unoptimized transform takes minutes at this size).
#[cfg(not(debug_assertions))]
#[test]
fn full_frame_streaming_encode_stays_bounded() {
    let (w, h, scales) = (4096usize, 4096usize, 5u32);
    let frame = synth::ct_phantom(w, h, 12, 7);
    let line = LineCompressor::new(scales).unwrap();
    let mut session = line.begin(w, h, 12).unwrap();
    let mut peak = 0usize;
    for y in 0..h {
        session.push_row(frame.view().row(y));
        peak = peak.max(session.working_set_samples());
    }
    let stream = session.finish();
    assert_eq!(stream, LosslessCodec::new(scales).unwrap().compress(&frame).unwrap());
    // The DWT rings are O(width x levels); the dominant term is the encoders'
    // buffered deferred-boundary coefficients, still far below the frame.
    assert!(peak < w * h / 8, "peak working set {peak} samples");
    assert!(peak > 0, "the session must actually buffer rows");
}
