//! Property and integration tests for the volumetric compression core:
//!
//! * 3-D round trips are lossless over randomized stack shapes (including
//!   prime/odd dimensions and slice counts smaller than a brick), tile and
//!   brick sizes, 2-D and z decomposition depths and worker counts,
//! * `LWCV` bytes never depend on the worker count,
//! * with `z_scales = 0` every per-plane substream is **byte-identical** to
//!   the 2-D codec's stream for the same tile of the same slice — the
//!   property that pins the volumetric and planar datapaths together,
//! * the slab-streaming decoder reassembles the volume exactly and in z
//!   order with one brick layer resident at a time,
//! * corrupt containers — truncated, padded, version-forged, or
//!   directory-tampered — are rejected, never miscoded, and forged headers
//!   declaring implausible voxel counts are refused **before any
//!   allocation** by the decompression-bomb guard.

use lwc_coder::volume::{split_brick_payload, VOLUME_HEADER_BYTES};
use lwc_core::prelude::*;
use proptest::prelude::*;

/// Deterministic mix of stack sources; the seeds make every run
/// reproducible. Even kinds use the correlated CT volume (slices evolve
/// smoothly along z), odd kinds stack independent per-slice phantoms — the
/// z transform must round-trip both.
fn phantom_stack(kind: usize, width: usize, height: usize, depth: usize, seed: u64) -> ImageStack {
    if kind % 2 == 0 {
        synth::ct_volume(width, height, depth, 12, seed)
    } else {
        let slices: Vec<Image> = (0..depth)
            .map(|z| match kind % 4 {
                1 => synth::mr_slice(width, height, 12, seed + z as u64),
                _ => synth::random_image(width, height, 12, seed + z as u64),
            })
            .collect();
        ImageStack::from_slices(&slices).expect("uniform slices")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn volume_roundtrip_is_lossless(
        width in 1usize..=70,
        height in 1usize..=70,
        depth in 1usize..=11,
        tile in 8usize..=48,
        brick in 1usize..=6,
        scales in 1u32..=4,
        z_scales in 0u32..=3,
        workers in 1usize..=4,
        kind in 0usize..4,
    ) {
        let engine = VolumeCompressor::with_codec(
            LosslessCodec::new(scales).expect("scales >= 1"),
            z_scales,
            tile,
            tile,
            brick,
            workers,
        )
        .expect("valid brick shape");
        let stack = phantom_stack(kind, width, height, depth, (width * 131 + height) as u64);
        let bytes = engine.compress_stack(&stack).expect("compress");
        let back = engine.decompress_stack(&bytes).expect("decompress");
        prop_assert!(
            back.samples() == stack.samples(),
            "{}x{}x{}, tile {}, brick {}, {} scales, {} z-scales, {} workers, kind {}",
            width, height, depth, tile, brick, scales, z_scales, workers, kind
        );
    }

    #[test]
    fn worker_count_never_changes_the_bytes(
        width in 1usize..=60,
        height in 1usize..=60,
        depth in 2usize..=10,
        workers in 2usize..=5,
    ) {
        let one = VolumeCompressor::new(3, 2, 24, 3, 1).expect("engine");
        let many = VolumeCompressor::new(3, 2, 24, 3, workers).expect("engine");
        let stack = phantom_stack(0, width, height, depth, (width + height * 7) as u64);
        prop_assert!(
            one.compress_stack(&stack).expect("1 worker")
                == many.compress_stack(&stack).expect("many workers"),
            "{}x{}x{}, {} workers", width, height, depth, workers
        );
    }

    #[test]
    fn zero_z_scales_planes_match_the_2d_tiled_path_byte_for_byte(
        width in 1usize..=60,
        height in 1usize..=60,
        depth in 1usize..=8,
        tile in 8usize..=40,
        scales in 1u32..=4,
    ) {
        // With no z decorrelation, each plane of each brick must be the 2-D
        // codec's exact bytes for that tile of that slice: the volumetric
        // container is then pure per-slice 2-D coding, seekable by brick.
        let codec = LosslessCodec::new(scales).expect("scales");
        let engine = VolumeCompressor::with_codec(codec, 0, tile, tile, 4, 2)
            .expect("valid brick shape");
        let stack = phantom_stack(2, width, height, depth, (width * 17 + depth) as u64);
        let bytes = engine.compress_stack(&stack).expect("compress");
        let stream = VolumeStream::parse(&bytes).expect("parse");
        let grid = stream.grid().expect("grid");
        for index in 0..grid.brick_count() {
            let rect = grid.rect(index);
            let planes = split_brick_payload(stream.brick_bytes(index), rect.depth)
                .expect("well-formed brick payload");
            for (dz, plane) in planes.iter().enumerate() {
                let slice = stack.slice(rect.z + dz).expect("slice in range");
                let tile_view = slice.subview(rect.plane).expect("tile in range");
                let expect = codec.compress_view(&tile_view).expect("2-D compress");
                prop_assert!(
                    *plane == expect.as_slice(),
                    "brick {} plane {} differs from the 2-D codec", index, dz
                );
            }
        }
    }

    #[test]
    fn slab_streaming_decode_reassembles_exactly(
        width in 1usize..=60,
        height in 1usize..=60,
        depth in 1usize..=12,
        brick in 1usize..=5,
        z_scales in 0u32..=2,
    ) {
        let engine = VolumeCompressor::new(3, z_scales, 24, brick, 2).expect("engine");
        let stack = phantom_stack(0, width, height, depth, (depth * 997 + width) as u64);
        let bytes = engine.compress_stack(&stack).expect("compress");
        let mut next_z = 0usize;
        for slab in engine.decompress_slabs(&bytes).expect("parse") {
            let slab = slab.expect("slab decode");
            prop_assert!(slab.z == next_z, "slabs must arrive in z order");
            prop_assert_eq!(slab.stack.width(), width);
            prop_assert_eq!(slab.stack.height(), height);
            for dz in 0..slab.stack.depth() {
                prop_assert!(
                    slab.stack.slice_image(dz).expect("slab slice").samples()
                        == stack.slice_image(slab.z + dz).expect("source slice").samples(),
                    "slice {} differs", slab.z + dz
                );
            }
            next_z += slab.stack.depth();
        }
        prop_assert!(next_z == depth, "slabs must cover every slice");
    }
}

#[test]
fn corrupt_volume_containers_are_rejected_not_miscoded() {
    let engine = VolumeCompressor::new(3, 2, 24, 3, 2).unwrap();
    let stack = phantom_stack(0, 50, 40, 7, 5);
    let bytes = engine.compress_stack(&stack).unwrap();
    let entry_bytes = 6; // 48-bit directory offsets

    // Truncation anywhere: header, directory, payloads.
    for len in
        [0, 4, VOLUME_HEADER_BYTES - 1, VOLUME_HEADER_BYTES + entry_bytes + 1, bytes.len() - 1]
    {
        assert!(engine.decompress_stack(&bytes[..len]).is_err(), "prefix of {len} bytes");
    }
    // Trailing garbage disagrees with the directory's end offset.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0, 0, 0]);
    assert!(engine.decompress_stack(&padded).is_err());
    // An unknown container version is refused outright.
    let mut versioned = bytes.clone();
    versioned[4] = 0x7F;
    assert!(engine.decompress_stack(&versioned).is_err());
    // Shifting the first directory offset breaks the payload-start invariant.
    let mut shifted = bytes.clone();
    shifted[VOLUME_HEADER_BYTES + entry_bytes - 1] ^= 0x01;
    assert!(engine.decompress_stack(&shifted).is_err());
    // Swapping two interior offsets breaks monotonicity.
    let mut swapped = bytes.clone();
    let (a, b) = (VOLUME_HEADER_BYTES + entry_bytes, VOLUME_HEADER_BYTES + 2 * entry_bytes);
    for i in 0..entry_bytes {
        swapped.swap(a + i, b + i);
    }
    assert!(engine.decompress_stack(&swapped).is_err());
    // A mis-scaled engine is refused (the header's own parameters win on
    // decode, so this must come back as a typed mismatch, not a miscode).
    let other = VolumeCompressor::new(5, 2, 24, 3, 2).unwrap();
    assert!(other.decompress_stack(&bytes).is_err());
    // And the untouched stream still decodes (the corruptions above were
    // real corruptions, not an over-strict parser).
    assert_eq!(engine.decompress_stack(&bytes).unwrap().samples(), stack.samples());
}

#[test]
fn forged_headers_are_rejected_before_any_allocation() {
    // A hand-built 32-byte header declaring a ~7 x 10^22-voxel volume over a
    // tiny payload: the pixels-vs-stream-bits plausibility guard must refuse
    // it at parse time — long before any buffer is sized from the header.
    let mut forged = Vec::new();
    forged.extend_from_slice(&0x4C57_4356u32.to_be_bytes()); // magic "LWCV"
    forged.push(1); // version
    forged.extend_from_slice(&0xFFFF_FFF1u32.to_be_bytes()); // width
    forged.extend_from_slice(&0xFFFF_FFF3u32.to_be_bytes()); // height
    forged.extend_from_slice(&0x0000_0FFFu32.to_be_bytes()); // depth
    forged.push(12); // bit depth
    forged.push(3); // scales
    forged.push(2); // z scales
    forged.extend_from_slice(&64u32.to_be_bytes()); // tile width
    forged.extend_from_slice(&64u32.to_be_bytes()); // tile height
    forged.extend_from_slice(&8u32.to_be_bytes()); // brick depth
    forged.extend_from_slice(&[0u8; 64]); // a sliver of "payload"
    let err = VolumeStream::parse(&forged).expect_err("forged header must be refused");
    assert!(
        err.to_string().contains("cannot encode even one bit per sample"),
        "the plausibility guard, not a later check, must fire: {err}"
    );

    // The same forgery applied to a genuine stream: inflating the declared
    // depth of a real container must also trip the guard.
    let engine = VolumeCompressor::new(3, 1, 32, 4, 1).unwrap();
    let bytes = engine.compress_stack(&phantom_stack(0, 40, 30, 4, 9)).unwrap();
    let mut inflated = bytes.clone();
    inflated[13..17].copy_from_slice(&0xFFFF_FFF0u32.to_be_bytes()); // depth field
    let err = VolumeStream::parse(&inflated).expect_err("inflated depth must be refused");
    assert!(
        err.to_string().contains("cannot encode even one bit per sample"),
        "guard must fire on the inflated depth: {err}"
    );
    // The untouched stream still parses and decodes.
    assert!(VolumeStream::parse(&bytes).is_ok());
    assert!(engine.decompress_stack(&bytes).is_ok());
}

/// Release-scale acceptance smoke (debug builds skip it; CI runs the same
/// thing through `reproduce volume` on every push): a 256x256x32 correlated
/// stack compresses and decompresses losslessly through the brick-parallel
/// path, and the 3-D bytes beat per-slice 2-D coding of the same voxels.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-scale; covered by `reproduce volume` in CI")]
fn large_volume_roundtrips_and_beats_per_slice_2d() {
    let stack = synth::ct_volume(256, 256, 32, 12, 9);
    let codec = LosslessCodec::new(4).unwrap();
    let engine = VolumeCompressor::with_codec(codec, 3, 64, 64, DEFAULT_BRICK_DEPTH, 0).unwrap();
    let bytes = engine.compress_stack(&stack).unwrap();
    let back = engine.decompress_stack(&bytes).unwrap();
    assert_eq!(back.samples(), stack.samples());
    let slice_engine = TiledCompressor::with_codec(codec, 64, 64, 0).unwrap();
    let per_slice: usize = (0..stack.depth())
        .map(|z| slice_engine.compress(&stack.slice_image(z).unwrap()).unwrap().len())
        .sum();
    assert!(
        bytes.len() < per_slice,
        "3-D ({} bytes) must beat per-slice 2-D ({per_slice} bytes) on a correlated stack",
        bytes.len()
    );
}
