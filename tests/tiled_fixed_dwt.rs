//! Property tests for the SIMD-friendly MAC kernel and the tile-parallel
//! fixed-point DWT driver:
//!
//! * `MacAccumulator::mac_slice` is **bit-identical** to folding the same
//!   taps through the scalar MAC chain — for random operands at odd/prime
//!   lengths straddling the lane width, and for every Table I filter bank's
//!   quantized kernels (every tap count the datapath ever runs),
//! * `TiledFixedDwt2d` produces, for every tile, exactly the words the
//!   monolithic `FixedDwt2d` produces for that region, never depends on the
//!   worker count, and round-trips losslessly,
//! * undecomposable tile shapes are rejected up front with a typed error.

use lwc_core::lwc_fixed::MAC_LANES;
use lwc_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random raw samples bounded so every tested dot product provably fits the
/// 64-bit accumulator (the precondition of the unchecked MAC paths, which
/// the DWT establishes once per pass via `dot_product_fits_i64`).
fn random_samples(rng: &mut StdRng, len: usize) -> Vec<i64> {
    (0..len).map(|_| rng.gen_range(-(1i64 << 29)..(1i64 << 29))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mac_slice_matches_the_scalar_chain_on_random_operands(
        len in 0usize..=67,
        seed in 0u64..=u64::MAX,
    ) {
        // Lengths sweep every chunk/tail split around the lane width,
        // including odd and prime; operand magnitudes keep the worst-case
        // L1-norm product inside i64 (67 * 2^24 * 2^29 < 2^60).
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs: Vec<i64> =
            (0..len).map(|_| rng.gen_range(-(1i64 << 24)..(1i64 << 24))).collect();
        let samples = random_samples(&mut rng, len);
        let mut scalar = MacAccumulator::new();
        for (&c, &s) in coeffs.iter().zip(&samples) {
            scalar.mac_unchecked(c, s);
        }
        let mut sliced = MacAccumulator::new();
        sliced.mac_slice(&coeffs, &samples);
        prop_assert!(
            scalar.value() == sliced.value(),
            "len {} (lanes {}): scalar {} vs sliced {}",
            len, MAC_LANES, scalar.value(), sliced.value()
        );
        prop_assert_eq!(scalar.ops(), sliced.ops());
    }

    #[test]
    fn mac_slice_matches_the_checked_path_for_every_filter_bank(
        seed in 0u64..=u64::MAX,
        extra in 0usize..=5,
    ) {
        // Every kernel the datapath ever multiplies with: the quantized
        // analysis and synthesis pairs of all six Table I banks, against
        // samples of the paper's 32-bit dynamic range — inside the L1-norm
        // bound, so the *checked* scalar path must agree bit for bit too.
        let mut rng = StdRng::seed_from_u64(seed);
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let qbank = QuantizedBank::paper_default(&bank).expect("paper quantization");
            for kernel in [
                qbank.analysis_lowpass(),
                qbank.analysis_highpass(),
                qbank.synthesis_lowpass(),
                qbank.synthesis_highpass(),
            ] {
                // `extra` repeats the kernel to exercise longer slices than
                // one tap window (ragged against the lane width).
                let coeffs: Vec<i64> =
                    kernel.raw().iter().copied().cycle().take(kernel.len() + extra).collect();
                let samples = random_samples(&mut rng, coeffs.len());
                let mut checked = MacAccumulator::new();
                for (&c, &s) in coeffs.iter().zip(&samples) {
                    checked.mac(c, s).expect("within the L1-norm bound");
                }
                let mut sliced = MacAccumulator::new();
                sliced.mac_slice(&coeffs, &samples);
                prop_assert!(
                    checked.value() == sliced.value(),
                    "{} taps of {}: checked {} vs sliced {}",
                    coeffs.len(), id, checked.value(), sliced.value()
                );
                prop_assert_eq!(checked.ops(), sliced.ops());
            }
        }
    }

    #[test]
    fn tiled_fixed_dwt_matches_the_monolithic_transform_per_region(
        scales in 1u32..=3,
        tile_units in 1usize..=3,
        frame_units_x in 1usize..=6,
        frame_units_y in 1usize..=6,
        workers in 1usize..=4,
        bank_index in 0usize..6,
    ) {
        // Dimensions in units of 2^scales keep every tile (ragged edges
        // included) decomposable to the configured depth.
        let unit = 1usize << scales;
        let tile = tile_units * unit;
        let width = frame_units_x * unit;
        let height = frame_units_y * unit;
        let bank = FilterBank::table1(FilterId::ALL[bank_index]);
        let engine = TiledFixedDwt2d::new(&bank, scales, tile, workers).expect("valid config");
        let frame = synth::ct_phantom(width, height, 12, (width * 31 + height) as u64);
        let tiles = engine.forward(&frame).expect("tiled forward");
        let grid = engine.grid(width, height).expect("decomposable grid");
        prop_assert_eq!(tiles.tiles().len(), grid.tile_count());
        for index in 0..grid.tile_count() {
            let crop = frame.crop(grid.rect(index)).expect("rect in bounds");
            let monolithic = engine.inner().forward(&crop).expect("monolithic forward");
            prop_assert!(
                tiles.tile(index) == &monolithic,
                "tile {} of {}x{} (tile {}, {} scales, {} workers) diverged",
                index, width, height, tile, scales, workers
            );
        }
        // And the tile-parallel inverse reassembles the frame exactly.
        let back = engine.inverse(&tiles).expect("tiled inverse");
        prop_assert!(stats::bit_exact(&frame, &back).expect("same shape"));
    }

    #[test]
    fn tiled_fixed_dwt_words_are_independent_of_the_worker_count(
        scales in 1u32..=3,
        tile_units in 1usize..=2,
        frame_units in 2usize..=5,
        kind in 0usize..3,
    ) {
        let unit = 1usize << scales;
        let tile = tile_units * unit;
        let side = frame_units * unit;
        let bank = FilterBank::table1(FilterId::F2);
        let frame = match kind {
            0 => synth::ct_phantom(side, side, 12, side as u64),
            1 => synth::mr_slice(side, side, 12, side as u64),
            _ => synth::random_image(side, side, 12, side as u64),
        };
        let reference = TiledFixedDwt2d::new(&bank, scales, tile, 1)
            .expect("valid config")
            .forward(&frame)
            .expect("forward");
        for workers in [2, 3, 7] {
            let engine = TiledFixedDwt2d::new(&bank, scales, tile, workers).expect("valid config");
            let words = engine.forward(&frame).expect("forward");
            prop_assert!(words == reference, "{} workers diverged", workers);
        }
    }
}

#[test]
fn undecomposable_tile_shapes_are_typed_errors_not_panics() {
    let bank = FilterBank::table1(FilterId::F1);
    // 36-pixel tiles cannot halve three times; neither can the ragged
    // 10-pixel right edge of 74 = 2*32 + 10 over 32-pixel tiles.
    let odd_tile = TiledFixedDwt2d::new(&bank, 3, 36, 2).unwrap();
    assert!(matches!(odd_tile.grid(72, 72), Err(PipelineError::Dwt(_))));
    let ragged = TiledFixedDwt2d::new(&bank, 3, 32, 2).unwrap();
    assert!(matches!(ragged.grid(74, 64), Err(PipelineError::Dwt(_))));
    assert!(ragged.forward(&synth::flat(74, 64, 12, 0)).is_err());
    // Aligned ragged edges are fine: 96 = 2*32 + 32 exact, 80 = 2*32 + 16.
    assert!(ragged.grid(96, 80).is_ok());
}

#[test]
fn batch_compressor_hands_out_a_tiled_dwt_with_its_worker_budget() {
    let bank = FilterBank::table1(FilterId::F3);
    let batch = BatchCompressor::new(4, 3).unwrap();
    let transform = FixedDwt2d::paper_default(&bank, 3).unwrap();
    let engine = batch.tiled_dwt(transform, 32, 32).unwrap();
    assert_eq!(engine.workers(), 3);
    assert_eq!(engine.scales(), 3);
    let frame = synth::mr_slice(96, 64, 12, 4);
    let back = engine.roundtrip(&frame).unwrap();
    assert!(stats::bit_exact(&frame, &back).unwrap());
}
